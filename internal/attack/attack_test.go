package attack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/noc"
)

func mesh16() noc.Mesh { return noc.Mesh{Width: 16, Height: 16} }

func TestCenterClusterIsTight(t *testing.T) {
	m := mesh16()
	p, err := CenterCluster(m, 8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("CenterCluster: %v", err)
	}
	if p.Size() != 8 {
		t.Fatalf("size = %d, want 8", p.Size())
	}
	eta, err := metrics.DensityEta(m, p.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if eta > 2 {
		t.Errorf("center cluster η = %v, want tight (≤ 2)", eta)
	}
	rho, _ := metrics.DistanceRho(m, m.Center(), p.Nodes)
	if rho > 1.5 {
		t.Errorf("center cluster ρ to mesh center = %v, want ≈ 0", rho)
	}
}

func TestCornerClusterIsFarFromCenter(t *testing.T) {
	m := mesh16()
	p, err := CornerCluster(m, 8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("CornerCluster: %v", err)
	}
	rho, _ := metrics.DistanceRho(m, m.Center(), p.Nodes)
	if rho < 8 {
		t.Errorf("corner cluster ρ to center = %v, want far (≥ 8)", rho)
	}
}

func TestRandomPlacementProperties(t *testing.T) {
	m := mesh16()
	rng := rand.New(rand.NewSource(1))
	gm := m.Center()
	p, err := RandomPlacement(m, 20, rng, gm)
	if err != nil {
		t.Fatalf("RandomPlacement: %v", err)
	}
	if p.Size() != 20 {
		t.Fatalf("size = %d, want 20", p.Size())
	}
	seen := make(map[noc.NodeID]bool)
	for _, n := range p.Nodes {
		if seen[n] {
			t.Fatal("duplicate node in placement")
		}
		seen[n] = true
		if n == gm {
			t.Fatal("excluded node was placed")
		}
	}
}

func TestRandomPlacementDeterministicPerSeed(t *testing.T) {
	m := mesh16()
	a, _ := RandomPlacement(m, 10, rand.New(rand.NewSource(7)))
	b, _ := RandomPlacement(m, 10, rand.New(rand.NewSource(7)))
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("same seed must give same placement")
		}
	}
}

func TestPlacementValidation(t *testing.T) {
	m := mesh16()
	if _, err := CenterCluster(m, 0, nil); err == nil {
		t.Error("zero count must fail")
	}
	if _, err := CornerCluster(m, 1000, nil); err == nil {
		t.Error("oversized count must fail")
	}
	if _, err := RandomPlacement(m, 300, rand.New(rand.NewSource(1))); err == nil {
		t.Error("oversized random placement must fail")
	}
	if _, err := RingCluster(m, noc.Coord{}, 0, 1); err == nil {
		t.Error("zero ring count must fail")
	}
}

func TestRingClusterControlsEta(t *testing.T) {
	m := mesh16()
	center := noc.Coord{X: 8, Y: 8}
	tight, err := RingCluster(m, center, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := RingCluster(m, center, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	etaT, _ := metrics.DensityEta(m, tight.Nodes)
	etaS, _ := metrics.DensityEta(m, spread.Nodes)
	if etaT >= etaS {
		t.Errorf("radius 0 η %v must be below radius 6 η %v", etaT, etaS)
	}
}

func TestRingClusterExcludes(t *testing.T) {
	m := mesh16()
	gm := m.ID(noc.Coord{X: 8, Y: 8})
	p, err := RingCluster(m, noc.Coord{X: 8, Y: 8}, 5, 0, gm)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range p.Nodes {
		if n == gm {
			t.Fatal("excluded manager was infected")
		}
	}
}

func TestInfectedSet(t *testing.T) {
	p := Placement{Nodes: []noc.NodeID{3, 7}}
	inf := p.Infected()
	if !inf[3] || !inf[7] || inf[5] {
		t.Errorf("Infected() = %v", inf)
	}
}

func TestForInfectionRateReachesTarget(t *testing.T) {
	m := mesh16()
	gm := m.Center()
	for _, target := range []float64{0.2, 0.5, 0.8, 0.95} {
		p, achieved := ForInfectionRate(m, gm, target, 64)
		if achieved < target {
			t.Errorf("target %v: achieved only %v with %d HTs", target, achieved, p.Size())
		}
		// Cross-check against the closed-form predictor.
		rate := metrics.InfectionRateXY(m, gm, p.Infected(), nil)
		if math.Abs(rate-achieved) > 1e-12 {
			t.Errorf("achieved %v disagrees with predictor %v", achieved, rate)
		}
		for _, n := range p.Nodes {
			if n == gm {
				t.Error("manager router must never be infected")
			}
		}
	}
}

func TestForInfectionRateBudgetBound(t *testing.T) {
	m := mesh16()
	gm := m.Center()
	p, achieved := ForInfectionRate(m, gm, 0.99, 2)
	if p.Size() > 2 {
		t.Errorf("placement used %d HTs, budget was 2", p.Size())
	}
	if achieved >= 0.99 {
		t.Log("2 HTs unexpectedly reached 99% — suspicious but not impossible")
	}
}

func TestForInfectionRateDegenerate(t *testing.T) {
	m := mesh16()
	if p, r := ForInfectionRate(m, m.Center(), 0, 5); p.Size() != 0 || r != 0 {
		t.Error("zero target must place nothing")
	}
	if p, _ := ForInfectionRate(m, m.Center(), 0.5, 0); p.Size() != 0 {
		t.Error("zero budget must place nothing")
	}
}

// Property: greedy cover monotonicity — more HT budget never lowers the
// achievable infection rate.
func TestForInfectionRateMonotonic(t *testing.T) {
	m := noc.Mesh{Width: 8, Height: 8}
	gm := m.Center()
	f := func(seedRaw uint8) bool {
		target := 0.3 + float64(seedRaw)/255*0.6
		_, r1 := ForInfectionRate(m, gm, target, 4)
		_, r2 := ForInfectionRate(m, gm, target, 16)
		return r2 >= r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFeaturesFor(t *testing.T) {
	m := mesh16()
	p, _ := CenterCluster(m, 4, nil)
	f, err := FeaturesFor(m, m.Corner(), p)
	if err != nil {
		t.Fatalf("FeaturesFor: %v", err)
	}
	if f.M != 4 {
		t.Errorf("M = %d, want 4", f.M)
	}
	if f.Rho <= 0 {
		t.Errorf("ρ = %v, want > 0 for corner manager", f.Rho)
	}
}

func TestFeaturesForEmpty(t *testing.T) {
	if _, err := FeaturesFor(mesh16(), 0, Placement{}); err == nil {
		t.Error("empty placement must fail")
	}
}

func TestFeatureVectorOrder(t *testing.T) {
	f := Features{Rho: 1, Eta: 2, M: 3, VictimPhi: []float64{4, 5}, AttackerPhi: []float64{6}}
	v := f.Vector()
	want := []float64{1, 2, 3, 4, 5, 6}
	if len(v) != len(want) {
		t.Fatalf("vector = %v", v)
	}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("vector = %v, want %v", v, want)
		}
	}
}

// synthSamples draws campaigns from a known linear ground truth so the fit
// can be verified exactly.
func synthSamples(n int, rng *rand.Rand) []Sample {
	samples := make([]Sample, n)
	for i := range samples {
		f := Features{
			Rho:         rng.Float64() * 10,
			Eta:         rng.Float64() * 5,
			M:           1 + rng.Intn(30),
			VictimPhi:   []float64{rng.Float64(), rng.Float64()},
			AttackerPhi: []float64{rng.Float64()},
		}
		q := -0.3*f.Rho - 0.2*f.Eta + 0.1*float64(f.M) +
			0.5*f.VictimPhi[0] + 0.7*f.VictimPhi[1] + 1.1*f.AttackerPhi[0] + 2.0
		samples[i] = Sample{Features: f, Q: q}
	}
	return samples
}

func TestFitEffectModelRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model, err := FitEffectModel(synthSamples(60, rng))
	if err != nil {
		t.Fatalf("FitEffectModel: %v", err)
	}
	a1, a2, a3, b, c, a0 := model.Coefficients()
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"a1", a1, -0.3}, {"a2", a2, -0.2}, {"a3", a3, 0.1},
		{"b1", b[0], 0.5}, {"b2", b[1], 0.7}, {"c1", c[0], 1.1}, {"a0", a0, 2.0},
	}
	for _, ch := range checks {
		if math.Abs(ch.got-ch.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", ch.name, ch.got, ch.want)
		}
	}
	if model.R2() < 0.999 {
		t.Errorf("R2 = %v, want ≈ 1 on noiseless data", model.R2())
	}
}

func TestFitEffectModelPredicts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := synthSamples(60, rng)
	model, err := FitEffectModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[:5] {
		if math.Abs(model.Predict(s.Features)-s.Q) > 1e-9 {
			t.Errorf("prediction %v, want %v", model.Predict(s.Features), s.Q)
		}
	}
}

func TestFitEffectModelShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := synthSamples(10, rng)
	samples[3].Features.VictimPhi = []float64{1}
	if _, err := FitEffectModel(samples); err == nil {
		t.Error("inconsistent Φ shapes must fail")
	}
}

func TestFitEffectModelEmpty(t *testing.T) {
	if _, err := FitEffectModel(nil); err == nil {
		t.Error("no samples must fail")
	}
	if _, err := FitAggregateModel(nil); err == nil {
		t.Error("no samples must fail")
	}
}

func TestFitAggregateModelMixedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var samples []Sample
	for i := 0; i < 50; i++ {
		nV := 1 + rng.Intn(3)
		nA := 1 + rng.Intn(3)
		f := Features{
			Rho: rng.Float64() * 10, Eta: rng.Float64() * 5, M: 1 + rng.Intn(20),
			VictimPhi: make([]float64, nV), AttackerPhi: make([]float64, nA),
		}
		for j := range f.VictimPhi {
			f.VictimPhi[j] = rng.Float64()
		}
		for j := range f.AttackerPhi {
			f.AttackerPhi[j] = rng.Float64()
		}
		// Ground truth in terms of means, matching the aggregate model.
		q := -0.3*f.Rho + 0.1*float64(f.M) + 0.9*mean(f.VictimPhi) + 1.2*mean(f.AttackerPhi) + 1.0
		samples = append(samples, Sample{Features: f, Q: q})
	}
	model, err := FitAggregateModel(samples)
	if err != nil {
		t.Fatalf("FitAggregateModel: %v", err)
	}
	if model.R2() < 0.999 {
		t.Errorf("aggregate R2 = %v, want ≈ 1", model.R2())
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestOptimizePlacementPrefersNearAndMany(t *testing.T) {
	// Ground truth: Q falls with ρ, rises with m. The optimiser must pick
	// the maximum HT count clustered next to the manager.
	m := mesh16()
	gm := m.Center()
	rng := rand.New(rand.NewSource(6))
	var samples []Sample
	for i := 0; i < 80; i++ {
		p, err := RandomPlacement(m, 1+rng.Intn(16), rng, gm)
		if err != nil {
			t.Fatal(err)
		}
		f, err := FeaturesFor(m, gm, p)
		if err != nil {
			t.Fatal(err)
		}
		f.VictimPhi = []float64{1}
		f.AttackerPhi = []float64{1}
		samples = append(samples, Sample{Features: f, Q: -0.5*f.Rho - 0.1*f.Eta + 0.2*float64(f.M) + 3})
	}
	model, err := FitEffectModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	best, evaluated, err := OptimizePlacement(m, gm, model, OptimizeOptions{
		MaxHTs: 16, CenterStride: 3, RadiusMax: 4,
		VictimPhi: []float64{1}, AttackerPhi: []float64{1},
	})
	if err != nil {
		t.Fatalf("OptimizePlacement: %v", err)
	}
	if evaluated == 0 {
		t.Fatal("no candidates evaluated")
	}
	if best.Features.M != 16 {
		t.Errorf("best M = %d, want the full 16 (coefficient positive)", best.Features.M)
	}
	if best.Features.Rho > 2 {
		t.Errorf("best ρ = %v, want near manager", best.Features.Rho)
	}
	for _, n := range best.Placement.Nodes {
		if n == gm {
			t.Error("optimal placement must not infect the manager router")
		}
	}
}

func TestOptimizePlacementValidation(t *testing.T) {
	m := mesh16()
	if _, _, err := OptimizePlacement(m, 0, nil, OptimizeOptions{MaxHTs: 4}); err == nil {
		t.Error("nil model must fail")
	}
	model := &EffectModel{}
	if _, _, err := OptimizePlacement(m, 0, model, OptimizeOptions{MaxHTs: 0}); err == nil {
		t.Error("zero MaxHTs must fail")
	}
}
