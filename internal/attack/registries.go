package attack

import (
	"math/rand"

	"repro/internal/noc"
	"repro/internal/registry"
)

// PlacementFunc generates a Trojan placement of the given size for one
// chip: m is the topology, gm the global manager (always excluded from
// the fleet), and rng the placement's own random stream (derive it from
// the campaign seed for reproducibility; deterministic generators ignore
// it).
type PlacementFunc func(m noc.Mesh, gm noc.NodeID, count int, rng *rand.Rand) (Placement, error)

// Placements is the placement-generator plugin registry ("center",
// "corner", "random", "ring"), covering the Fig 4 distributions plus the
// canonical near-manager ring of the X1/X2 studies (radius 2 around the
// manager).
var Placements = registry.New[PlacementFunc]("attack", "placement")

func init() {
	Placements.Register("center", func() PlacementFunc {
		return func(m noc.Mesh, gm noc.NodeID, count int, rng *rand.Rand) (Placement, error) {
			return CenterCluster(m, count, rng, gm)
		}
	})
	Placements.Register("corner", func() PlacementFunc {
		return func(m noc.Mesh, gm noc.NodeID, count int, rng *rand.Rand) (Placement, error) {
			return CornerCluster(m, count, rng, gm)
		}
	})
	Placements.Register("random", func() PlacementFunc {
		return func(m noc.Mesh, gm noc.NodeID, count int, rng *rand.Rand) (Placement, error) {
			return RandomPlacement(m, count, rng, gm)
		}
	})
	Placements.Register("ring", func() PlacementFunc {
		return func(m noc.Mesh, gm noc.NodeID, count int, _ *rand.Rand) (Placement, error) {
			return RingCluster(m, m.Coord(gm), count, 2, gm)
		}
	})
}

// PlacementByName returns the named placement generator.
func PlacementByName(name string) (PlacementFunc, error) { return Placements.Lookup(name) }
