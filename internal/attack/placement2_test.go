package attack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/noc"
)

func TestRandomForInfectionRateTracksTarget(t *testing.T) {
	m := mesh16()
	gm := m.Center()
	rng := rand.New(rand.NewSource(4))
	for _, target := range []float64{0.2, 0.4, 0.6, 0.8} {
		p, rate := RandomForInfectionRate(m, gm, target, 6, rng)
		if p.Size() == 0 {
			t.Fatalf("target %v: empty placement", target)
		}
		if math.Abs(rate-target) > 0.15 {
			t.Errorf("target %v: achieved %v (too far off)", target, rate)
		}
		// Reported rate must match the closed-form predictor.
		if got := metrics.InfectionRateXY(m, gm, p.Infected(), nil); math.Abs(got-rate) > 1e-12 {
			t.Errorf("reported rate %v disagrees with predictor %v", rate, got)
		}
	}
}

func TestRandomForInfectionRateDegenerate(t *testing.T) {
	m := mesh16()
	if p, r := RandomForInfectionRate(m, m.Center(), 0, 5, rand.New(rand.NewSource(1))); p.Size() != 0 || r != 0 {
		t.Error("zero target must place nothing")
	}
	// trialsPerSize below 1 is clamped, not an error.
	p, _ := RandomForInfectionRate(m, m.Center(), 0.5, 0, rand.New(rand.NewSource(1)))
	if p.Size() == 0 {
		t.Error("clamped trials must still search")
	}
}

func TestBalancedForInfectionRateBalancesGroups(t *testing.T) {
	m := mesh16()
	gm := m.Center()
	rng := rand.New(rand.NewSource(9))
	// Two disjoint groups: left half vs right half of the mesh.
	var left, right []noc.NodeID
	for id := noc.NodeID(0); id < noc.NodeID(m.Nodes()); id++ {
		if id == gm {
			continue
		}
		if m.Coord(id).X < m.Width/2 {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	target := 0.5
	p, rate := BalancedForInfectionRate(m, gm, target, [][]noc.NodeID{left, right}, 10, rng)
	if p.Size() == 0 {
		t.Fatal("empty placement")
	}
	if math.Abs(rate-target) > 0.2 {
		t.Errorf("overall rate %v too far from %v", rate, target)
	}
	infected := p.Infected()
	lRate := rateOver(m, gm, infected, left)
	rRate := rateOver(m, gm, infected, right)
	if math.Abs(lRate-rRate) > 0.45 {
		t.Errorf("group rates %v vs %v are badly unbalanced", lRate, rRate)
	}
}

func TestBalancedForInfectionRateDegenerate(t *testing.T) {
	m := mesh16()
	if p, _ := BalancedForInfectionRate(m, m.Center(), 0, nil, 5, rand.New(rand.NewSource(1))); p.Size() != 0 {
		t.Error("zero target must place nothing")
	}
	// Empty groups are skipped, not fatal.
	p, _ := BalancedForInfectionRate(m, m.Center(), 0.4, [][]noc.NodeID{nil, {}}, 5, rand.New(rand.NewSource(1)))
	if p.Size() == 0 {
		t.Error("empty groups must not prevent placement")
	}
}

func TestRateOverSubsets(t *testing.T) {
	m := noc.Mesh{Width: 4, Height: 4}
	gm := m.ID(noc.Coord{X: 0, Y: 0})
	infected := map[noc.NodeID]bool{m.ID(noc.Coord{X: 1, Y: 0}): true}
	hot := m.ID(noc.Coord{X: 3, Y: 0})  // path crosses (1,0)
	cold := m.ID(noc.Coord{X: 0, Y: 3}) // path stays in column 0
	if got := rateOver(m, gm, infected, []noc.NodeID{hot}); got != 1 {
		t.Errorf("hot source rate = %v, want 1", got)
	}
	if got := rateOver(m, gm, infected, []noc.NodeID{cold}); got != 0 {
		t.Errorf("cold source rate = %v, want 0", got)
	}
	if got := rateOver(m, gm, infected, []noc.NodeID{}); got != 0 {
		t.Errorf("empty sources = %v, want 0", got)
	}
	// nil means all non-manager sources: must agree with metrics.
	all := rateOver(m, gm, infected, nil)
	want := metrics.InfectionRateXY(m, gm, infected, nil)
	if math.Abs(all-want) > 1e-12 {
		t.Errorf("rateOver(nil) = %v, metrics = %v", all, want)
	}
}

func TestRegionClusterTightWhenRngNil(t *testing.T) {
	m := mesh16()
	p, err := CenterCluster(m, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// nil rng packs the tightest: the 4 nodes nearest the mesh centre.
	eta, _ := metrics.DensityEta(m, p.Nodes)
	if eta > 1.2 {
		t.Errorf("packed center cluster η = %v, want ≤ 1.2", eta)
	}
}

func TestRegionClusterSamplesWiderWithRng(t *testing.T) {
	m := mesh16()
	packed, _ := CenterCluster(m, 8, nil)
	etaPacked, _ := metrics.DensityEta(m, packed.Nodes)
	// Averaged over seeds, the sampled cluster is at least as spread out.
	sum := 0.0
	const trials = 10
	for s := int64(0); s < trials; s++ {
		sampled, err := CenterCluster(m, 8, rand.New(rand.NewSource(s)))
		if err != nil {
			t.Fatal(err)
		}
		eta, _ := metrics.DensityEta(m, sampled.Nodes)
		sum += eta
	}
	if sum/trials < etaPacked {
		t.Errorf("sampled mean η %v below packed η %v", sum/trials, etaPacked)
	}
}

func TestRegionClusterRespectsExclude(t *testing.T) {
	m := mesh16()
	gm := m.Center()
	for s := int64(0); s < 5; s++ {
		p, err := CenterCluster(m, 8, rand.New(rand.NewSource(s)), gm)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range p.Nodes {
			if n == gm {
				t.Fatal("excluded manager was infected")
			}
		}
	}
}

func TestCornerClusterStaysNearCorner(t *testing.T) {
	m := mesh16()
	p, err := CornerCluster(m, 8, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range p.Nodes {
		c := m.Coord(n)
		if c.X+c.Y > 8 {
			t.Errorf("corner-cluster node %v too far from (0,0)", c)
		}
	}
}

func TestRankPlacementsOrderingAndDedup(t *testing.T) {
	m := mesh16()
	gm := m.Center()
	rng := rand.New(rand.NewSource(6))
	var samples []Sample
	for i := 0; i < 40; i++ {
		p, err := RandomPlacement(m, 1+rng.Intn(12), rng, gm)
		if err != nil {
			t.Fatal(err)
		}
		f, err := FeaturesFor(m, gm, p)
		if err != nil {
			t.Fatal(err)
		}
		f.VictimPhi, f.AttackerPhi = []float64{1}, []float64{1}
		samples = append(samples, Sample{Features: f, Q: -0.4*f.Rho + 0.1*float64(f.M) + 2})
	}
	model, err := FitEffectModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	top, evaluated, err := RankPlacements(m, gm, model, OptimizeOptions{
		MaxHTs: 12, CenterStride: 4, RadiusMax: 3,
		VictimPhi: []float64{1}, AttackerPhi: []float64{1},
	}, 5)
	if err != nil {
		t.Fatalf("RankPlacements: %v", err)
	}
	if evaluated == 0 || len(top) != 5 {
		t.Fatalf("evaluated=%d len(top)=%d", evaluated, len(top))
	}
	seen := make(map[string]bool)
	for i, c := range top {
		if i > 0 && c.PredictedQ > top[i-1].PredictedQ {
			t.Fatal("shortlist not sorted descending")
		}
		key := placementKey(c.Placement)
		if seen[key] {
			t.Fatal("duplicate placement in shortlist")
		}
		seen[key] = true
	}
}

func TestRankPlacementsValidation(t *testing.T) {
	m := mesh16()
	model := &EffectModel{coeffs: []float64{0, 0, 0}, intercept: 1}
	if _, _, err := RankPlacements(m, 0, nil, OptimizeOptions{MaxHTs: 2}, 1); err == nil {
		t.Error("nil model must fail")
	}
	if _, _, err := RankPlacements(m, 0, model, OptimizeOptions{MaxHTs: 2}, 0); err == nil {
		t.Error("k=0 must fail")
	}
	if _, _, err := RankPlacements(m, 0, model, OptimizeOptions{MaxHTs: 2, MinHTs: 3}, 1); err == nil {
		t.Error("MinHTs > MaxHTs must fail")
	}
}

func TestInsertCandidateKeepsBestK(t *testing.T) {
	var top []Candidate
	for _, q := range []float64{1, 5, 3, 4, 2} {
		top = insertCandidate(top, Candidate{PredictedQ: q}, 3)
	}
	if len(top) != 3 {
		t.Fatalf("len = %d, want 3", len(top))
	}
	want := []float64{5, 4, 3}
	for i, w := range want {
		if top[i].PredictedQ != w {
			t.Fatalf("top = %v, want %v", top, want)
		}
	}
}
