package attack

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/noc"

	"repro/internal/metrics"
)

// Features are the explanatory variables of the Eqn 9 linear model for one
// attack campaign.
type Features struct {
	// Rho is Definition 7: Manhattan distance between the global manager
	// and the Trojans' virtual center.
	Rho float64
	// Eta is Definition 8: mean Manhattan distance from the virtual center
	// to each Trojan.
	Eta float64
	// M is the number of Trojans.
	M int
	// VictimPhi are the victim applications' Φ values (Definition 5), in a
	// fixed order.
	VictimPhi []float64
	// AttackerPhi are the attacker applications' Φ values.
	AttackerPhi []float64
}

// FeaturesFor computes the geometric features of a placement against a
// manager position, leaving the Φ vectors to the caller.
func FeaturesFor(m noc.Mesh, gm noc.NodeID, p Placement) (Features, error) {
	rho, err := metrics.DistanceRho(m, gm, p.Nodes)
	if err != nil {
		return Features{}, fmt.Errorf("attack: features: %w", err)
	}
	eta, err := metrics.DensityEta(m, p.Nodes)
	if err != nil {
		return Features{}, fmt.Errorf("attack: features: %w", err)
	}
	return Features{Rho: rho, Eta: eta, M: p.Size()}, nil
}

// Vector flattens the features into the Eqn 9 regressor order:
// [ρ, η, m, Φ_γ1…Φ_γV, Φ_δ1…Φ_δA].
func (f Features) Vector() []float64 {
	out := make([]float64, 0, 3+len(f.VictimPhi)+len(f.AttackerPhi))
	out = append(out, f.Rho, f.Eta, float64(f.M))
	out = append(out, f.VictimPhi...)
	out = append(out, f.AttackerPhi...)
	return out
}

// aggregateVector is the variable-shape variant: Φ vectors are collapsed to
// their means so mixes with different attacker/victim counts can share one
// model.
func (f Features) aggregateVector() []float64 {
	return []float64{f.Rho, f.Eta, float64(f.M), mathx.Mean(f.VictimPhi), mathx.Mean(f.AttackerPhi)}
}

// Sample is one observed campaign: features plus the measured attack
// effect Q.
type Sample struct {
	Features Features
	Q        float64
}

// EffectModel is the fitted Eqn 9 model. Regressor columns that are
// constant across the training samples — the Φ columns are constant
// whenever all samples come from one Table III mix — cannot be identified
// separately from the intercept; they are dropped from the regression (a
// zero coefficient) and absorbed into a0.
type EffectModel struct {
	// NumVictims and NumAttackers fix the Φ-vector shape for exact models;
	// both are zero for aggregate models.
	NumVictims, NumAttackers int
	// Aggregate marks a model fitted on mean-Φ features.
	Aggregate bool

	coeffs    []float64 // full-width, zeros at dropped columns
	intercept float64
	r2        float64
}

// FitEffectModel fits the exact Eqn 9 regression. All samples must share
// one victim/attacker shape.
func FitEffectModel(samples []Sample) (*EffectModel, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("attack: no samples")
	}
	nV := len(samples[0].Features.VictimPhi)
	nA := len(samples[0].Features.AttackerPhi)
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		if len(s.Features.VictimPhi) != nV || len(s.Features.AttackerPhi) != nA {
			return nil, fmt.Errorf("attack: sample %d has inconsistent Φ shape", i)
		}
		x[i] = s.Features.Vector()
		y[i] = s.Q
	}
	m := &EffectModel{NumVictims: nV, NumAttackers: nA}
	if err := m.fit(x, y); err != nil {
		return nil, err
	}
	return m, nil
}

// FitAggregateModel fits the mean-Φ variant, usable across mixes with
// different attacker/victim counts.
func FitAggregateModel(samples []Sample) (*EffectModel, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("attack: no samples")
	}
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		x[i] = s.Features.aggregateVector()
		y[i] = s.Q
	}
	m := &EffectModel{Aggregate: true}
	if err := m.fit(x, y); err != nil {
		return nil, err
	}
	return m, nil
}

// fit runs OLS over the non-constant columns and expands the coefficient
// vector back to full width.
func (m *EffectModel) fit(x [][]float64, y []float64) error {
	width := len(x[0])
	keep := make([]int, 0, width)
	for j := 0; j < width; j++ {
		lo, hi := x[0][j], x[0][j]
		for _, row := range x {
			if row[j] < lo {
				lo = row[j]
			}
			if row[j] > hi {
				hi = row[j]
			}
		}
		if hi-lo > 1e-12 {
			keep = append(keep, j)
		}
	}
	reduced := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(keep))
		for k, j := range keep {
			r[k] = row[j]
		}
		reduced[i] = r
	}
	m.coeffs = make([]float64, width)
	if len(keep) == 0 {
		// Every regressor constant: the model is just the mean of Q.
		m.intercept = mathx.Mean(y)
		m.r2 = 0
		return nil
	}
	ols, err := mathx.FitOLS(reduced, y)
	if err != nil {
		return fmt.Errorf("attack: fit: %w", err)
	}
	for k, j := range keep {
		m.coeffs[j] = ols.Coeffs[k]
	}
	m.intercept = ols.Intercept
	m.r2 = ols.R2
	return nil
}

// Predict evaluates the fitted model on features f.
func (m *EffectModel) Predict(f Features) float64 {
	v := f.Vector()
	if m.Aggregate {
		v = f.aggregateVector()
	}
	s := m.intercept
	for j, c := range m.coeffs {
		if j < len(v) {
			s += c * v[j]
		}
	}
	return s
}

// R2 returns the training-set coefficient of determination.
func (m *EffectModel) R2() float64 { return m.r2 }

// Coefficients returns (a1, a2, a3) for (ρ, η, m), the per-victim b and
// per-attacker c coefficients (mean-Φ coefficients for aggregate models),
// and the intercept a0, matching Eqn 9's naming. Dropped (constant)
// columns report a zero coefficient.
func (m *EffectModel) Coefficients() (a1, a2, a3 float64, b, c []float64, a0 float64) {
	co := m.coeffs
	a1, a2, a3 = co[0], co[1], co[2]
	if m.Aggregate {
		return a1, a2, a3, []float64{co[3]}, []float64{co[4]}, m.intercept
	}
	b = append(b, co[3:3+m.NumVictims]...)
	c = append(c, co[3+m.NumVictims:]...)
	return a1, a2, a3, b, c, m.intercept
}
