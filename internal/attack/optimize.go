package attack

import (
	"fmt"

	"repro/internal/noc"
)

// Candidate is one evaluated point of the Eqn 10 search space.
type Candidate struct {
	Placement  Placement
	Features   Features
	PredictedQ float64
}

// OptimizeOptions bounds the Eqn 10–11 exhaustive enumeration.
type OptimizeOptions struct {
	// MaxHTs is the constraint M_HT of Eqn 11.
	MaxHTs int
	// MinHTs floors the fleet-size sweep (default 1). Set it equal to
	// MaxHTs to optimise at a fixed fleet size, as the Section V-C
	// comparison does — necessary when the model was trained on a single
	// fleet size and therefore carries no m coefficient.
	MinHTs int
	// CenterStride subsamples the candidate cluster centers; 1 enumerates
	// every mesh coordinate.
	CenterStride int
	// RadiusMax caps the ring radius (η control); 0 derives it from the
	// mesh diagonal.
	RadiusMax int
	// VictimPhi and AttackerPhi are the mix's Φ vectors, passed through to
	// the model.
	VictimPhi, AttackerPhi []float64
}

// OptimizePlacement solves Eqn 10 by exhaustive enumeration, exactly as the
// paper prescribes: it sweeps the number of HTs, the cluster center
// (controlling ρ), and the ring radius (controlling η), materialises each
// candidate placement, and keeps the one whose model-predicted Q is
// largest. The manager's router is never infected. It returns the best
// candidate and the number of placements evaluated.
func OptimizePlacement(m noc.Mesh, gm noc.NodeID, model *EffectModel, opts OptimizeOptions) (Candidate, int, error) {
	top, evaluated, err := RankPlacements(m, gm, model, opts, 1)
	if err != nil {
		return Candidate{}, evaluated, err
	}
	return top[0], evaluated, nil
}

// RankPlacements runs the Eqn 10 enumeration and returns the k candidates
// with the highest model-predicted Q, best first, deduplicated by node set.
// A linear model extrapolates, so serious attackers validate the shortlist
// by simulation before committing silicon — that is what the Section V-C
// reproduction does with this function.
func RankPlacements(m noc.Mesh, gm noc.NodeID, model *EffectModel, opts OptimizeOptions, k int) ([]Candidate, int, error) {
	if model == nil {
		return nil, 0, fmt.Errorf("attack: optimizer needs a fitted model")
	}
	if opts.MaxHTs < 1 {
		return nil, 0, fmt.Errorf("attack: MaxHTs must be positive")
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("attack: need k ≥ 1")
	}
	minHTs := opts.MinHTs
	if minHTs < 1 {
		minHTs = 1
	}
	if minHTs > opts.MaxHTs {
		return nil, 0, fmt.Errorf("attack: MinHTs %d exceeds MaxHTs %d", minHTs, opts.MaxHTs)
	}
	stride := opts.CenterStride
	if stride < 1 {
		stride = 1
	}
	radiusMax := opts.RadiusMax
	if radiusMax <= 0 {
		radiusMax = (m.Width + m.Height) / 4
	}

	var top []Candidate
	seen := make(map[string]bool)
	evaluated := 0
	// The paper's three enumeration axes: m, distance (via center), and
	// density (via radius).
	for count := minHTs; count <= opts.MaxHTs; count++ {
		for cy := 0; cy < m.Height; cy += stride {
			for cx := 0; cx < m.Width; cx += stride {
				for radius := 0; radius <= radiusMax; radius++ {
					p, err := RingCluster(m, noc.Coord{X: cx, Y: cy}, count, float64(radius), gm)
					if err != nil {
						return nil, evaluated, err
					}
					f, err := FeaturesFor(m, gm, p)
					if err != nil {
						return nil, evaluated, err
					}
					f.VictimPhi = opts.VictimPhi
					f.AttackerPhi = opts.AttackerPhi
					q := model.Predict(f)
					evaluated++
					if len(top) == k && q <= top[k-1].PredictedQ {
						continue
					}
					key := placementKey(p)
					if seen[key] {
						continue
					}
					seen[key] = true
					top = insertCandidate(top, Candidate{Placement: p, Features: f, PredictedQ: q}, k)
				}
			}
		}
	}
	if len(top) == 0 {
		return nil, evaluated, fmt.Errorf("attack: enumeration produced no candidates")
	}
	return top, evaluated, nil
}

func placementKey(p Placement) string {
	b := make([]byte, 0, 4*len(p.Nodes))
	for _, n := range p.Nodes {
		b = append(b, byte(n>>8), byte(n), ',', ' ')
	}
	return string(b)
}

// insertCandidate keeps the slice sorted descending by PredictedQ with at
// most k entries.
func insertCandidate(top []Candidate, c Candidate, k int) []Candidate {
	pos := len(top)
	for pos > 0 && top[pos-1].PredictedQ < c.PredictedQ {
		pos--
	}
	top = append(top, Candidate{})
	copy(top[pos+1:], top[pos:])
	top[pos] = c
	if len(top) > k {
		top = top[:k]
	}
	return top
}
