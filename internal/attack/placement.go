// Package attack implements the attacker's planning toolkit from Section
// IV: Trojan placement generators (the center/random/corner distributions
// of Fig 4 and parameterised clusters), the linear attack-effect model of
// Eqn 9, and the exhaustive placement optimiser of Eqns 10–11.
package attack

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/noc"
)

// Placement is a set of Trojan-infected routers.
type Placement struct {
	Nodes []noc.NodeID
}

// Infected returns the placement as a membership set.
func (p Placement) Infected() map[noc.NodeID]bool {
	m := make(map[noc.NodeID]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		m[n] = true
	}
	return m
}

// Size returns the number of Trojans.
func (p Placement) Size() int { return len(p.Nodes) }

func validateCount(m noc.Mesh, count int) error {
	if count < 1 {
		return fmt.Errorf("attack: placement needs at least one Trojan, got %d", count)
	}
	if count > m.Nodes() {
		return fmt.Errorf("attack: %d Trojans exceed %d-node mesh", count, m.Nodes())
	}
	return nil
}

// nearestTo returns the count mesh nodes closest to the real-valued
// coordinate (cx, cy) by Manhattan distance, excluding the given nodes,
// with deterministic tie-breaking by node ID.
func nearestTo(m noc.Mesh, cx, cy float64, count int, exclude map[noc.NodeID]bool) []noc.NodeID {
	type scored struct {
		id noc.NodeID
		d  float64
	}
	all := make([]scored, 0, m.Nodes())
	for id := noc.NodeID(0); id < noc.NodeID(m.Nodes()); id++ {
		if exclude[id] {
			continue
		}
		c := m.Coord(id)
		all = append(all, scored{id: id, d: math.Abs(float64(c.X)-cx) + math.Abs(float64(c.Y)-cy)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	if count > len(all) {
		count = len(all)
	}
	out := make([]noc.NodeID, count)
	for i := 0; i < count; i++ {
		out[i] = all[i].id
	}
	return out
}

// CenterCluster places count Trojans "close to the center of the chip"
// (Fig 4): drawn randomly from the smallest central region holding at
// least twice the fleet, so the cluster is concentrated but does not
// deterministically seal every router adjacent to a central manager. Nodes
// in exclude (typically the manager) are never infected. A nil rng packs
// the cluster tightly instead of sampling.
func CenterCluster(m noc.Mesh, count int, rng *rand.Rand, exclude ...noc.NodeID) (Placement, error) {
	cx := float64(m.Width-1) / 2
	cy := float64(m.Height-1) / 2
	return regionCluster(m, cx, cy, count, rng, exclude)
}

// CornerCluster places count Trojans in "a concentrated area near one
// corner" (Fig 4), sampled like CenterCluster but around (0, 0).
func CornerCluster(m noc.Mesh, count int, rng *rand.Rand, exclude ...noc.NodeID) (Placement, error) {
	return regionCluster(m, 0, 0, count, rng, exclude)
}

// regionCluster samples count nodes from the smallest Manhattan ball
// around (cx, cy) containing at least 2×count eligible nodes.
func regionCluster(m noc.Mesh, cx, cy float64, count int, rng *rand.Rand, exclude []noc.NodeID) (Placement, error) {
	if err := validateCount(m, count); err != nil {
		return Placement{}, err
	}
	ex := make(map[noc.NodeID]bool, len(exclude))
	for _, e := range exclude {
		ex[e] = true
	}
	// Eligible nodes ordered by distance from the region center.
	pool := nearestTo(m, cx, cy, m.Nodes(), ex)
	if count > len(pool) {
		return Placement{}, fmt.Errorf("attack: %d Trojans exceed %d eligible nodes", count, len(pool))
	}
	regionSize := 2 * count
	if regionSize > len(pool) {
		regionSize = len(pool)
	}
	region := pool[:regionSize]
	var nodes []noc.NodeID
	if rng == nil {
		nodes = append(nodes, region[:count]...)
	} else {
		picks := rng.Perm(len(region))[:count]
		nodes = make([]noc.NodeID, count)
		for i, p := range picks {
			nodes[i] = region[p]
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return Placement{Nodes: nodes}, nil
}

// RandomPlacement draws count distinct routers uniformly — the "HTs
// distributed randomly" distribution of Fig 4. Nodes in exclude are never
// chosen.
func RandomPlacement(m noc.Mesh, count int, rng *rand.Rand, exclude ...noc.NodeID) (Placement, error) {
	if err := validateCount(m, count); err != nil {
		return Placement{}, err
	}
	ex := make(map[noc.NodeID]bool, len(exclude))
	for _, e := range exclude {
		ex[e] = true
	}
	pool := make([]noc.NodeID, 0, m.Nodes())
	for id := noc.NodeID(0); id < noc.NodeID(m.Nodes()); id++ {
		if !ex[id] {
			pool = append(pool, id)
		}
	}
	if count > len(pool) {
		return Placement{}, fmt.Errorf("attack: %d Trojans exceed %d eligible nodes", count, len(pool))
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	nodes := make([]noc.NodeID, count)
	copy(nodes, pool[:count])
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return Placement{Nodes: nodes}, nil
}

// RingCluster places count Trojans whose Manhattan distance to the given
// center is as close to radius as possible. radius 0 reproduces a tight
// cluster; larger radii spread the fleet, raising the Definition 8 η. The
// exclude set (typically the global manager) is never infected.
func RingCluster(m noc.Mesh, center noc.Coord, count int, radius float64, exclude ...noc.NodeID) (Placement, error) {
	if err := validateCount(m, count); err != nil {
		return Placement{}, err
	}
	ex := make(map[noc.NodeID]bool, len(exclude))
	for _, e := range exclude {
		ex[e] = true
	}
	type scored struct {
		id noc.NodeID
		d  float64
	}
	all := make([]scored, 0, m.Nodes())
	for id := noc.NodeID(0); id < noc.NodeID(m.Nodes()); id++ {
		if ex[id] {
			continue
		}
		c := m.Coord(id)
		md := math.Abs(float64(c.X-center.X)) + math.Abs(float64(c.Y-center.Y))
		all = append(all, scored{id: id, d: math.Abs(md - radius)})
	}
	if count > len(all) {
		return Placement{}, fmt.Errorf("attack: %d Trojans exceed %d eligible nodes", count, len(all))
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	nodes := make([]noc.NodeID, count)
	for i := 0; i < count; i++ {
		nodes[i] = all[i].id
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return Placement{Nodes: nodes}, nil
}

// RandomForInfectionRate searches uniformly random placements for one whose
// XY infection rate against the manager is as close to target as possible,
// growing the fleet size until the target is reachable. Unlike the greedy
// cover of ForInfectionRate, random fleets intercept victim and attacker
// sources in unbiased proportion — this is how the Fig 5 x-axis sweep is
// generated. It returns the chosen placement and its exact rate.
func RandomForInfectionRate(m noc.Mesh, gm noc.NodeID, target float64, trialsPerSize int, rng *rand.Rand) (Placement, float64) {
	if target <= 0 {
		return Placement{}, 0
	}
	if trialsPerSize < 1 {
		trialsPerSize = 1
	}
	var (
		best     Placement
		bestRate float64
		bestDiff = math.Inf(1)
	)
	maxHTs := m.Nodes() - 1
	for size := 1; size <= maxHTs; size = growFleet(size) {
		reached := false
		for trial := 0; trial < trialsPerSize; trial++ {
			p, err := RandomPlacement(m, size, rng, gm)
			if err != nil {
				break
			}
			rate := metricsInfectionXY(m, gm, p)
			if d := math.Abs(rate - target); d < bestDiff {
				best, bestRate, bestDiff = p, rate, d
			}
			if rate >= target {
				reached = true
			}
		}
		if reached {
			break
		}
	}
	return best, bestRate
}

func growFleet(size int) int {
	if size < 8 {
		return size + 1
	}
	return size + size/4
}

// BalancedForInfectionRate is the variance-reduced variant of
// RandomForInfectionRate used for the Fig 5/6 sweeps: among random fleets it
// prefers one whose infection rate is near target overall AND within each
// source group (typically the victim cores and the attacker cores), so that
// a lucky fleet covering exactly one application's quadrant does not distort
// the Q-versus-infection curve.
func BalancedForInfectionRate(m noc.Mesh, gm noc.NodeID, target float64, groups [][]noc.NodeID, trialsPerSize int, rng *rand.Rand) (Placement, float64) {
	if target <= 0 {
		return Placement{}, 0
	}
	if trialsPerSize < 1 {
		trialsPerSize = 1
	}
	var (
		best      Placement
		bestRate  float64
		bestScore = math.Inf(1)
	)
	maxHTs := m.Nodes() - 1
	for size := 1; size <= maxHTs; size = growFleet(size) {
		reached := false
		for trial := 0; trial < trialsPerSize; trial++ {
			p, err := RandomPlacement(m, size, rng, gm)
			if err != nil {
				break
			}
			infected := p.Infected()
			rate := rateOver(m, gm, infected, nil)
			score := math.Abs(rate - target)
			for _, g := range groups {
				if len(g) == 0 {
					continue
				}
				score += math.Abs(rateOver(m, gm, infected, g)-target) / float64(len(groups))
			}
			if score < bestScore {
				best, bestRate, bestScore = p, rate, score
			}
			if rate >= target {
				reached = true
			}
		}
		if reached {
			break
		}
	}
	return best, bestRate
}

// rateOver computes the XY infection rate over the given sources (all
// non-manager nodes when nil).
func rateOver(m noc.Mesh, gm noc.NodeID, infected map[noc.NodeID]bool, sources []noc.NodeID) float64 {
	hit, total := 0, 0
	check := func(src noc.NodeID) {
		total++
		for _, r := range m.PathXY(src, gm) {
			if infected[r] {
				hit++
				return
			}
		}
	}
	if sources == nil {
		for id := noc.NodeID(0); id < noc.NodeID(m.Nodes()); id++ {
			if id != gm {
				check(id)
			}
		}
	} else {
		for _, id := range sources {
			check(id)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// metricsInfectionXY is the closed-form rate over all non-manager sources.
func metricsInfectionXY(m noc.Mesh, gm noc.NodeID, p Placement) float64 {
	return rateOver(m, gm, p.Infected(), nil)
}

// ForInfectionRate greedily builds a placement achieving at least the
// target infection rate against the given manager under XY routing, using
// at most maxHTs Trojans (greedy set cover over source paths). The
// manager's own router is never infected. It returns the placement and the
// achieved rate, which can fall short when maxHTs is too small.
func ForInfectionRate(m noc.Mesh, gm noc.NodeID, target float64, maxHTs int) (Placement, float64) {
	if target <= 0 || maxHTs < 1 {
		return Placement{}, 0
	}
	// Path sets per source.
	sources := make([]noc.NodeID, 0, m.Nodes()-1)
	for id := noc.NodeID(0); id < noc.NodeID(m.Nodes()); id++ {
		if id != gm {
			sources = append(sources, id)
		}
	}
	coverage := make(map[noc.NodeID][]int) // router -> indexes of sources it covers
	for si, src := range sources {
		for _, r := range m.PathXY(src, gm) {
			if r == gm {
				continue
			}
			coverage[r] = append(coverage[r], si)
		}
	}
	covered := make([]bool, len(sources))
	nCovered := 0
	var picked []noc.NodeID
	for len(picked) < maxHTs && float64(nCovered)/float64(len(sources)) < target {
		// needed is how many more sources must be covered to hit the
		// target. Prefer the router whose marginal gain meets the need
		// with the LEAST overshoot; when no single router suffices, take
		// the largest gain. This keeps achieved rates close to requested
		// ones across the whole Fig 5 sweep instead of jumping straight
		// to a high-coverage hub next to the manager.
		needed := int(math.Ceil(target*float64(len(sources)))) - nCovered
		bestOver, bestOverGain := noc.NodeID(-1), int(^uint(0)>>1) // min gain ≥ needed
		bestUnder, bestUnderGain := noc.NodeID(-1), 0              // max gain < needed
		for id := noc.NodeID(0); id < noc.NodeID(m.Nodes()); id++ {
			srcs, ok := coverage[id]
			if !ok {
				continue
			}
			gain := 0
			for _, si := range srcs {
				if !covered[si] {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			if gain >= needed && gain < bestOverGain {
				bestOver, bestOverGain = id, gain
			}
			if gain < needed && gain > bestUnderGain {
				bestUnder, bestUnderGain = id, gain
			}
		}
		best := bestOver
		if best < 0 {
			best = bestUnder
		}
		if best < 0 {
			break
		}
		picked = append(picked, best)
		for _, si := range coverage[best] {
			if !covered[si] {
				covered[si] = true
				nCovered++
			}
		}
		delete(coverage, best)
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	return Placement{Nodes: picked}, float64(nCovered) / float64(len(sources))
}
