package htsim

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/noc"
)

// settings accumulates option effects before they are resolved into a
// validated core configuration.
type settings struct {
	cfg core.Config
	// defenseName defers defense resolution until the power model is
	// final (the range guard derives its window from the DVFS table).
	defenseName string
	// routingSet notes an explicit WithRouting, so WithTopology("torus")
	// only auto-selects torus routing when the caller expressed no
	// preference.
	routingSet bool
	observers  []Observer
}

// Option configures one aspect of a simulation under construction. Apply
// order is the argument order; later options win on conflicts.
type Option func(*settings) error

// WithCores sets the number of tiles (default 256, the Table I chip).
func WithCores(n int) Option {
	return func(s *settings) error {
		s.cfg.Cores = n
		return nil
	}
}

// WithTopology selects a registered topology by name (see Topologies;
// "mesh" and "torus" are built in). Choosing a wraparound topology
// auto-selects the matching deadlock-free routing algorithm ("torus-xy")
// unless WithRouting picked one explicitly.
func WithTopology(name string) Option {
	return func(s *settings) error {
		canonical, err := noc.Topologies.Canonical(name)
		if err != nil {
			return err
		}
		s.cfg.Topology = canonical
		return nil
	}
}

// WithRouting selects a registered routing algorithm by name (see
// Routings; default "xy").
func WithRouting(name string) Option {
	return func(s *settings) error {
		r, err := noc.RoutingByName(name)
		if err != nil {
			return err
		}
		s.cfg.NoC.Routing = r
		s.routingSet = true
		return nil
	}
}

// WithAllocator selects a registered budget allocator by name (see
// Allocators; default "fair").
func WithAllocator(name string) Option {
	return func(s *settings) error {
		a, err := budget.ByName(name)
		if err != nil {
			return err
		}
		s.cfg.Allocator = a
		return nil
	}
}

// WithDefense selects a registered manager-side defense configuration by
// name (see Defenses; default "none"). The configuration may install a
// request filter, enable dual-path request verification, or both.
func WithDefense(name string) Option {
	return func(s *settings) error {
		if _, err := defense.ByName(name); err != nil {
			return err
		}
		s.defenseName = name
		return nil
	}
}

// WithGMPlacement puts the global manager at "center" (default) or
// "corner" — the two placements of Fig 3.
func WithGMPlacement(pos string) Option {
	return func(s *settings) error {
		switch pos {
		case "center":
			s.cfg.GM = core.GMCenter
		case "corner":
			s.cfg.GM = core.GMCorner
		default:
			return fmt.Errorf("htsim: unknown manager placement %q (known: center, corner)", pos)
		}
		return nil
	}
}

// WithBudgetFraction sets the chip power budget as a fraction of summed
// peak power (default 0.5).
func WithBudgetFraction(f float64) Option {
	return func(s *settings) error {
		s.cfg.BudgetFraction = f
		return nil
	}
}

// WithEpochs sets the number of budgeting epochs simulated (default 10).
func WithEpochs(n int) Option {
	return func(s *settings) error {
		s.cfg.Epochs = n
		return nil
	}
}

// WithWarmupEpochs sets how many leading epochs are excluded from
// performance accounting (default 2).
func WithWarmupEpochs(n int) Option {
	return func(s *settings) error {
		s.cfg.WarmupEpochs = n
		return nil
	}
}

// WithEpochCycles sets the budgeting epoch length in NoC cycles
// (default 1000).
func WithEpochCycles(c uint64) Option {
	return func(s *settings) error {
		s.cfg.EpochCycles = c
		return nil
	}
}

// WithMemTraffic enables or disables the cache-driven background traffic
// substrate (default on, matching the paper's full-system runs; disable
// it for fast budget-protocol-only studies).
func WithMemTraffic(on bool) Option {
	return func(s *settings) error {
		s.cfg.MemTraffic = on
		return nil
	}
}

// WithDualPath enables route-diverse dual-path request verification
// independently of WithDefense (WithDefense("dual-path") is the
// registered equivalent).
func WithDualPath(on bool) Option {
	return func(s *settings) error {
		s.cfg.DualPathRequests = on
		return nil
	}
}

// WithSeed sets the seed driving every random stream (default 1).
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.cfg.Seed = seed
		return nil
	}
}

// WithWorkers caps the worker pool for fan-out runs (0 = one per CPU;
// 1 = sequential; results are bit-identical for every setting).
func WithWorkers(n int) Option {
	return func(s *settings) error {
		s.cfg.Workers = n
		return nil
	}
}

// WithObserver registers a streaming observer; every Run and RunPair of
// the simulation feeds it one EpochSample per budgeting epoch. Repeat the
// option to register several observers.
func WithObserver(obs Observer) Option {
	return func(s *settings) error {
		if obs == nil {
			return fmt.Errorf("htsim: nil observer")
		}
		s.observers = append(s.observers, obs)
		return nil
	}
}

// WithConfig replaces the whole underlying configuration, for callers
// migrating from the internal API or needing a knob no option covers yet.
// Options after it still apply on top.
func WithConfig(cfg core.Config) Option {
	return func(s *settings) error {
		s.cfg = cfg
		s.routingSet = true
		return nil
	}
}

// resolve applies the options onto the defaults and finalises the
// configuration (torus auto-routing, named defense installation,
// observer installation).
func resolve(opts []Option) (*settings, error) {
	s := &settings{cfg: core.DefaultConfig()}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.cfg.Topology == "torus" && !s.routingSet {
		s.cfg.NoC.Routing = noc.TorusRouting{}
	}
	// Observers ride on the configuration itself (Config.Observer), so a
	// config assembled through BuildConfig streams exactly like a Sim
	// built through New — the campaign engine and the simulation service
	// rely on this to bridge per-epoch samples out of deeply nested
	// experiment drivers.
	if len(s.observers) > 0 {
		merged := make(core.MultiObserver, 0, len(s.observers)+1)
		if s.cfg.Observer != nil {
			merged = append(merged, s.cfg.Observer)
		}
		merged = append(merged, s.observers...)
		s.cfg.Observer = merged
	}
	if s.defenseName != "" {
		dcfg, err := defense.ByName(s.defenseName)
		if err != nil {
			return nil, err
		}
		if dcfg.Filter != nil {
			levelsMW := make([]uint32, s.cfg.Power.NumLevels())
			for i := range levelsMW {
				levelsMW[i] = s.cfg.Power.PowerMW(i)
			}
			if s.cfg.Filter, err = dcfg.Filter(levelsMW); err != nil {
				return nil, err
			}
		}
		if dcfg.DualPath {
			s.cfg.DualPathRequests = true
		}
	}
	return s, nil
}

// BuildConfig resolves options into a validated configuration without
// constructing a simulation — the hook the campaign engine and CLIs use
// so every config in the tree is assembled through one code path.
func BuildConfig(opts ...Option) (core.Config, error) {
	s, err := resolve(opts)
	if err != nil {
		return core.Config{}, err
	}
	if err := s.cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return s.cfg, nil
}
