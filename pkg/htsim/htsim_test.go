package htsim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/noc"
)

func TestNewDefaultsMatchTableI(t *testing.T) {
	sim, err := New(WithMemTraffic(false))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg := sim.Config()
	want := core.DefaultConfig()
	if cfg.Cores != want.Cores || cfg.BudgetFraction != want.BudgetFraction ||
		cfg.Allocator.Name() != want.Allocator.Name() || cfg.NoC.Routing.Name() != "xy" {
		t.Errorf("SDK defaults diverged from core.DefaultConfig: %+v", cfg)
	}
	if m := sim.Mesh(); m.Width != 16 || m.Height != 16 || m.Wrap {
		t.Errorf("default topology = %+v, want 16x16 mesh", m)
	}
}

func TestOptionsResolvePluginNames(t *testing.T) {
	sim, err := New(
		WithCores(64),
		WithTopology("torus"),
		WithAllocator("pi"),
		WithDefense("history-guard"),
		WithRouting("torus-xy"),
		WithGMPlacement("corner"),
		WithMemTraffic(false),
		WithEpochs(6),
		WithSeed(7),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg := sim.Config()
	if cfg.Topology != "torus" || !sim.Mesh().Wrap {
		t.Errorf("topology not applied: %+v", cfg)
	}
	if cfg.Allocator.Name() != "pi" {
		t.Errorf("allocator = %s, want pi", cfg.Allocator.Name())
	}
	if cfg.Filter == nil || cfg.Filter.Name() != "history-guard" {
		t.Errorf("defense filter not installed: %+v", cfg.Filter)
	}
	if cfg.GM != core.GMCorner || cfg.Epochs != 6 || cfg.Seed != 7 {
		t.Errorf("options not applied: %+v", cfg)
	}
}

func TestTorusAutoSelectsWrapRouting(t *testing.T) {
	sim, err := New(WithCores(64), WithTopology("torus"), WithMemTraffic(false))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if name := sim.Config().NoC.Routing.Name(); name != "torus-xy" {
		t.Errorf("routing = %s, want auto-selected torus-xy", name)
	}
	// An explicit routing choice wins over the auto-selection.
	sim, err = New(WithCores(64), WithTopology("torus"), WithRouting("xy"), WithMemTraffic(false))
	if err != nil {
		t.Fatalf("New with explicit routing: %v", err)
	}
	if name := sim.Config().NoC.Routing.Name(); name != "xy" {
		t.Errorf("routing = %s, want explicit xy", name)
	}
}

func TestUnknownPluginNamesFailWithKnownList(t *testing.T) {
	cases := []Option{
		WithTopology("hypercube"),
		WithRouting("zigzag"),
		WithAllocator("magic"),
		WithDefense("firewall"),
	}
	for i, opt := range cases {
		_, err := New(opt)
		if err == nil {
			t.Fatalf("case %d: unknown plugin name must fail", i)
		}
		if !strings.Contains(err.Error(), "known:") {
			t.Errorf("case %d: error %q does not list known plugins", i, err)
		}
	}
	if _, err := MixScenario("mix-9", 8); err == nil {
		t.Error("unknown mix must fail")
	}
	if _, err := Strategy("nuke"); err == nil {
		t.Error("unknown strategy must fail")
	}
	if _, err := AttackMode("teleport"); err == nil {
		t.Error("unknown attack mode must fail")
	}
}

// sampleCollector counts streamed epochs.
type sampleCollector struct {
	samples []EpochSample
}

func (c *sampleCollector) ObserveEpoch(s EpochSample) { c.samples = append(c.samples, s) }

func TestTorusScenarioEndToEndWithObserver(t *testing.T) {
	// The acceptance scenario: a torus-topology chip, plugins resolved by
	// name on every axis, streaming observer attached, run end to end.
	col := &sampleCollector{}
	sim, err := New(
		WithCores(64),
		WithTopology("torus"),
		WithAllocator("greedy"),
		WithMemTraffic(false),
		WithEpochs(8),
		WithObserver(col),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sc, err := MixScenario("mix-1", 8)
	if err != nil {
		t.Fatal(err)
	}
	strategy, err := Strategy("scale")
	if err != nil {
		t.Fatal(err)
	}
	sc.Strategy = strategy
	trojans, err := sim.Trojans("ring", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc.Trojans = trojans
	attacked, baseline, err := sim.RunPair(context.Background(), sc)
	if err != nil {
		t.Fatalf("RunPair: %v", err)
	}
	cmp, err := Compare(attacked, baseline)
	if err != nil {
		t.Fatal(err)
	}
	if attacked.InfectionMeasured <= 0 {
		t.Error("torus campaign measured zero infection under a ring fleet")
	}
	if cmp.Q <= 0 {
		t.Errorf("attack effect Q = %v, want positive", cmp.Q)
	}
	if len(col.samples) != 8 {
		t.Errorf("streamed %d samples, want 8 (attacked run epochs)", len(col.samples))
	}
	if attacked.Net.Delivered == 0 {
		t.Error("no packets delivered on the torus")
	}
}

func TestRunHonoursContextCancellation(t *testing.T) {
	sim, err := New(WithCores(64), WithMemTraffic(false), WithEpochs(50))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := MixScenario("mix-1", 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Run(ctx, sc); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBuildConfigMatchesLegacyAssembly(t *testing.T) {
	// The campaign engine builds its configs through BuildConfig; the
	// result must be indistinguishable from the historical hand-assembled
	// core.DefaultConfig mutation, or golden artifacts would drift.
	got, err := BuildConfig(WithCores(64), WithEpochs(6), WithMemTraffic(false), WithSeed(3), WithWorkers(2))
	if err != nil {
		t.Fatalf("BuildConfig: %v", err)
	}
	want := core.DefaultConfig()
	want.Cores = 64
	want.Epochs = 6
	want.MemTraffic = false
	want.Seed = 3
	want.Workers = 2
	if got.Cores != want.Cores || got.Epochs != want.Epochs || got.MemTraffic != want.MemTraffic ||
		got.Seed != want.Seed || got.Workers != want.Workers ||
		got.BudgetFraction != want.BudgetFraction || got.EpochCycles != want.EpochCycles ||
		got.WarmupEpochs != want.WarmupEpochs || got.GM != want.GM ||
		got.Allocator.Name() != want.Allocator.Name() || got.Topology != "" {
		t.Errorf("BuildConfig = %+v, want %+v", got, want)
	}
}

func TestAxesCoverEveryRegistry(t *testing.T) {
	axes := Axes()
	wantAxes := []string{"topology", "routing", "allocator", "defense",
		"trojan-strategy", "attack-mode", "placement", "mix", "benchmark"}
	if len(axes) != len(wantAxes) {
		t.Fatalf("Axes lists %d axes, want %d", len(axes), len(wantAxes))
	}
	for i, a := range axes {
		if a.Name != wantAxes[i] {
			t.Errorf("axis %d = %s, want %s", i, a.Name, wantAxes[i])
		}
		if len(a.Plugins) == 0 {
			t.Errorf("axis %s has no plugins", a.Name)
		}
	}
	mustContain := map[string]string{
		"topology":        "torus",
		"routing":         "torus-xy",
		"allocator":       "pi",
		"defense":         "dual-path+range",
		"trojan-strategy": "zero",
		"attack-mode":     "loopback",
		"placement":       "ring",
		"mix":             "mix-4",
		"benchmark":       "canneal",
	}
	for _, a := range axes {
		want, ok := mustContain[a.Name]
		if !ok {
			continue
		}
		found := false
		for _, p := range a.Plugins {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("axis %s missing %q: %v", a.Name, want, a.Plugins)
		}
	}
}

func TestTrojansForInfection(t *testing.T) {
	sim, err := New(WithCores(64), WithMemTraffic(false))
	if err != nil {
		t.Fatal(err)
	}
	p, predicted := sim.TrojansForInfection(0.5)
	if p.Size() == 0 || predicted <= 0 {
		t.Errorf("placement %d HTs predicted %v, want a non-trivial fleet", p.Size(), predicted)
	}
}

func TestWithConfigEscapeHatch(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Cores = 64
	cfg.MemTraffic = false
	cfg.NoC.Routing = noc.YXRouting{}
	sim, err := New(WithConfig(cfg), WithAllocator("dp"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got := sim.Config()
	if got.NoC.Routing.Name() != "yx" || got.Allocator.Name() != "dp" || got.Cores != 64 {
		t.Errorf("WithConfig composition broken: %+v", got)
	}
}
