package htsim

import (
	"fmt"
	"strings"
	"testing"
)

// This file covers the option-validation error paths: every unknown
// plugin name fails through the registry's canonical
// `unknown <axis> "<name>" (known: ...)` message, out-of-range scalars
// are rejected by configuration validation, and every registered
// defense × allocator combination builds (the axes are orthogonal by
// design — a conflict would be a registry bug).

// TestUnknownNamesUseCanonicalRegistryError asserts the exact error shape
// on every plugin axis: the axis noun, the quoted unknown name, and the
// full known-name list.
func TestUnknownNamesUseCanonicalRegistryError(t *testing.T) {
	cases := []struct {
		opt   Option
		axis  string
		known []string
	}{
		{WithTopology("hypercube"), "topology", Topologies()},
		{WithRouting("zigzag"), "routing", Routings()},
		{WithAllocator("magic"), "allocator", Allocators()},
		{WithDefense("firewall"), "defense", Defenses()},
	}
	for _, c := range cases {
		_, err := BuildConfig(c.opt)
		if err == nil {
			t.Fatalf("%s: unknown plugin name must fail BuildConfig", c.axis)
		}
		msg := err.Error()
		wantList := fmt.Sprintf("(known: %s)", strings.Join(c.known, ", "))
		if !strings.Contains(msg, "unknown "+c.axis) {
			t.Errorf("%s: error %q does not name the axis", c.axis, msg)
		}
		if !strings.Contains(msg, wantList) {
			t.Errorf("%s: error %q does not list every registered plugin %q", c.axis, msg, wantList)
		}
	}
}

// TestBuildConfigRejectsOutOfRangeScalars covers the scalar validation
// paths behind the options.
func TestBuildConfigRejectsOutOfRangeScalars(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"zero cores", []Option{WithCores(0)}, "at least two cores"},
		{"negative cores", []Option{WithCores(-16)}, "at least two cores"},
		{"one core", []Option{WithCores(1)}, "at least two cores"},
		{"zero budget", []Option{WithBudgetFraction(0)}, "budget fraction"},
		{"negative budget", []Option{WithBudgetFraction(-0.25)}, "budget fraction"},
		{"budget above one", []Option{WithBudgetFraction(1.5)}, "budget fraction"},
		{"zero epochs", []Option{WithEpochs(0)}, "measured epoch"},
		{"warmup eats epochs", []Option{WithEpochs(3), WithWarmupEpochs(3)}, "measured epoch"},
		{"short epoch", []Option{WithEpochCycles(10)}, "at least 100 cycles"},
		{"unknown manager placement", []Option{WithGMPlacement("edge")}, "unknown manager placement"},
	}
	for _, c := range cases {
		_, err := BuildConfig(c.opts...)
		if err == nil {
			t.Errorf("%s: BuildConfig must fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if _, err := BuildConfig(WithObserver(nil)); err == nil || !strings.Contains(err.Error(), "nil observer") {
		t.Errorf("nil observer: got %v", err)
	}
}

// TestEveryDefenseAllocatorComboBuilds sweeps the full defense ×
// allocator matrix: the two axes are orthogonal, so every registered
// combination must resolve into a valid configuration (and an unknown
// name in the combination still fails with the canonical error).
func TestEveryDefenseAllocatorComboBuilds(t *testing.T) {
	for _, def := range Defenses() {
		for _, alloc := range Allocators() {
			cfg, err := BuildConfig(WithDefense(def), WithAllocator(alloc), WithCores(64))
			if err != nil {
				t.Errorf("defense %q + allocator %q: %v", def, alloc, err)
				continue
			}
			if cfg.Allocator.Name() != alloc {
				t.Errorf("defense %q + allocator %q resolved allocator %q", def, alloc, cfg.Allocator.Name())
			}
		}
		// A bad allocator in an otherwise valid combination keeps the
		// canonical message.
		_, err := BuildConfig(WithDefense(def), WithAllocator("magic"))
		if err == nil || !strings.Contains(err.Error(), "unknown allocator") || !strings.Contains(err.Error(), "known:") {
			t.Errorf("defense %q + unknown allocator: got %v", def, err)
		}
	}
	// Defense configurations that install a filter derive it from the
	// power model's DVFS table; the guard must see the filter installed.
	cfg, err := BuildConfig(WithDefense("range-guard"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Filter == nil {
		t.Error(`WithDefense("range-guard") left no filter installed`)
	}
	cfg, err = BuildConfig(WithDefense("dual-path"))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.DualPathRequests {
		t.Error(`WithDefense("dual-path") did not enable dual-path requests`)
	}
}
