// Package htsim is the public SDK for the hardware-Trojan power-budgeting
// simulator: a composable façade over the internal chip model that wires
// every axis of a scenario — topology, routing, budget allocator,
// manager-side defense, Trojan strategy and attack mode, workload mix,
// placement — through named, discoverable plugin registries instead of
// hand-edited config structs.
//
// A simulation is assembled with functional options and run with a
// context:
//
//	sim, err := htsim.New(
//		htsim.WithCores(256),
//		htsim.WithTopology("torus"),
//		htsim.WithAllocator("pi"),
//		htsim.WithDefense("history-guard"),
//	)
//	if err != nil { ... }
//	sc, err := htsim.MixScenario("mix-1", 64)
//	trojans, err := sim.Trojans("ring", 16, 1)
//	sc.Trojans = trojans
//	report, err := sim.Run(ctx, sc)
//
// Cancelling the context stops the simulation promptly, mid-epoch
// included, and cancellation propagates through the internal worker pool
// that fans out paired and multi-trial runs. Long-running consumers
// stream typed per-epoch samples by registering an Observer
// (WithObserver) instead of waiting for the end-of-run Report.
//
// Every plugin axis is enumerable: Axes lists the registries and their
// registered names, which is also what `htcampaign list` prints and what
// the documentation gate cross-checks, so a plugin registered anywhere in
// the tree is automatically discoverable here, in the CLIs, and in the
// campaign spec format.
package htsim
