package htsim

import (
	"context"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/trojan"
	"repro/internal/workload"
)

// Aliases re-export the simulation vocabulary so SDK consumers program
// against one package. They are true aliases: values flow freely between
// the SDK and the lower layers.
type (
	// Scenario describes one attack campaign (applications, Trojans,
	// strategy, attack mode, duty cycle).
	Scenario = core.Scenario
	// AppSpec is one application in a scenario.
	AppSpec = core.AppSpec
	// Report is the end-of-run outcome of one campaign.
	Report = core.Report
	// Comparison is the attacked-vs-baseline evaluation (Θ per app, Q).
	Comparison = core.Comparison
	// Observer receives streaming per-epoch samples during a run.
	Observer = core.Observer
	// ObserverFunc adapts a plain function to Observer — the idiom service
	// bridges use to forward samples into an event stream.
	ObserverFunc = core.ObserverFunc
	// EpochSample is one typed streaming observation.
	EpochSample = core.EpochSample
	// Placement is a set of infected routers.
	Placement = attack.Placement
	// Config is the fully resolved chip configuration behind a Sim.
	Config = core.Config
)

// Application roles, re-exported for scenario literals.
const (
	// RoleNeutral marks bystander applications.
	RoleNeutral = core.RoleNeutral
	// RoleAttacker marks the hacker's applications.
	RoleAttacker = core.RoleAttacker
	// RoleVictim marks the applications the attack targets.
	RoleVictim = core.RoleVictim
)

// Sim is a configured chip ready to run scenarios. One Sim evaluates any
// number of scenarios; each run builds fresh simulation state.
type Sim struct {
	sys *core.System
}

// New assembles a simulation from functional options over the Table I
// defaults: 256 cores on a 2D mesh, XY routing, fair-share allocation, a
// 50 % chip budget, no defense. Unknown plugin names and invalid
// combinations are rejected here, with the registry's canonical error
// naming every known plugin.
func New(opts ...Option) (*Sim, error) {
	s, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(s.cfg)
	if err != nil {
		return nil, err
	}
	return &Sim{sys: sys}, nil
}

// Run executes one campaign. The context cancels the simulation promptly
// (mid-epoch included); registered observers (WithObserver, carried on
// the configuration) stream one EpochSample per budgeting epoch while it
// runs.
func (s *Sim) Run(ctx context.Context, sc Scenario) (*Report, error) {
	return s.sys.RunContext(ctx, sc, nil)
}

// RunPair executes the scenario and its clean baseline under identical
// configuration and seeds, returning (attacked, baseline). The pair fans
// out over the worker pool; cancellation aborts both. Observers stream
// the attacked run.
func (s *Sim) RunPair(ctx context.Context, sc Scenario) (*Report, *Report, error) {
	return s.sys.RunPairContext(ctx, sc, nil)
}

// Config returns the resolved chip configuration.
func (s *Sim) Config() Config { return s.sys.Config() }

// Mesh returns the chip's topology.
func (s *Sim) Mesh() noc.Mesh { return s.sys.Mesh() }

// ManagerNode returns the global manager's node.
func (s *Sim) ManagerNode() noc.NodeID { return s.sys.ManagerNode() }

// System exposes the underlying chip model for callers that need the
// internal API (experiment drivers, analytic helpers).
func (s *Sim) System() *core.System { return s.sys }

// Trojans builds a Trojan placement with a registered placement generator
// (see Placements: "center", "corner", "random", "ring"), sized to count
// routers and excluding the global manager. seed drives the generator's
// random stream; deterministic generators ignore it.
func (s *Sim) Trojans(placement string, count int, seed int64) (Placement, error) {
	gen, err := attack.PlacementByName(placement)
	if err != nil {
		return Placement{}, err
	}
	return gen(s.sys.Mesh(), s.sys.ManagerNode(), count, rand.New(rand.NewSource(seed)))
}

// TrojansForInfection builds the smallest placement predicted to reach
// the target infection rate at the configured manager position, returning
// the placement and its predicted rate — the Fig 5 x-axis workflow.
func (s *Sim) TrojansForInfection(target float64) (Placement, float64) {
	mesh := s.sys.Mesh()
	return attack.ForInfectionRate(mesh, s.sys.ManagerNode(), target, mesh.Nodes()/4)
}

// MixScenario builds the standard campaign for a registered workload mix
// (see Mixes): every application gets threads cores, attackers placed
// first.
func MixScenario(mixName string, threads int) (Scenario, error) {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return Scenario{}, err
	}
	return core.MixScenario(mix, threads)
}

// Strategy returns a registered Trojan payload strategy by name (see
// TrojanStrategies), for Scenario.Strategy.
func Strategy(name string) (trojan.Strategy, error) { return trojan.StrategyByName(name) }

// AttackMode returns a registered Section II-B attack class by name (see
// AttackModes), for Scenario.Mode.
func AttackMode(name string) (trojan.Mode, error) { return trojan.ModeByName(name) }

// Compare evaluates an attacked run against its clean baseline,
// producing per-application Θ and the attack effect Q.
func Compare(attacked, baseline *Report) (*Comparison, error) {
	return core.Compare(attacked, baseline)
}
