package htsim

import (
	"repro/internal/attack"
	"repro/internal/budget"
	"repro/internal/defense"
	"repro/internal/noc"
	"repro/internal/trojan"
	"repro/internal/workload"
)

// Axis is one plugin axis of the simulator: a registry name and its
// registered plugin names in canonical order.
type Axis struct {
	// Name identifies the axis ("topology", "allocator", ...).
	Name string
	// Plugins are the registered names, in registration order.
	Plugins []string
}

// Axes enumerates every plugin axis and its registered names. This is the
// single discovery point the CLIs (`htcampaign list`), the docs gate, and
// SDK consumers share: registering a plugin anywhere makes it appear
// here.
func Axes() []Axis {
	return []Axis{
		{Name: "topology", Plugins: noc.Topologies.Names()},
		{Name: "routing", Plugins: noc.Routings.Names()},
		{Name: "allocator", Plugins: budget.Registry.Names()},
		{Name: "defense", Plugins: defense.Registry.Names()},
		{Name: "trojan-strategy", Plugins: trojan.Strategies.Names()},
		{Name: "attack-mode", Plugins: trojan.Modes.Names()},
		{Name: "placement", Plugins: attack.Placements.Names()},
		{Name: "mix", Plugins: workload.MixRegistry.Names()},
		{Name: "benchmark", Plugins: workload.Benchmarks.Names()},
	}
}

// Topologies lists the registered topology names.
func Topologies() []string { return noc.Topologies.Names() }

// Routings lists the registered routing-algorithm names.
func Routings() []string { return noc.Routings.Names() }

// Allocators lists the registered budget-allocator names.
func Allocators() []string { return budget.Registry.Names() }

// Defenses lists the registered defense-configuration names.
func Defenses() []string { return defense.Registry.Names() }

// TrojanStrategies lists the registered payload-strategy names.
func TrojanStrategies() []string { return trojan.Strategies.Names() }

// AttackModes lists the registered Section II-B attack-class names.
func AttackModes() []string { return trojan.Modes.Names() }

// Placements lists the registered placement-generator names.
func Placements() []string { return attack.Placements.Names() }

// Mixes lists the registered workload-mix names.
func Mixes() []string { return workload.MixRegistry.Names() }

// Benchmarks lists the registered benchmark-profile names.
func Benchmarks() []string { return workload.Benchmarks.Names() }
