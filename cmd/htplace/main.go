// Command htplace covers the attacker-planning experiments: the Section
// III-D area/power accounting table and the Section V-C optimal-vs-random
// placement comparison built on the Eqn 9 model and Eqn 10 enumeration.
//
// Examples:
//
//	htplace -areapower
//	htplace -optimize -mix mix-4 -hts 16 -samples 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/trojan"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "htplace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("htplace", flag.ContinueOnError)
	var (
		areapower = fs.Bool("areapower", false, "print the Section III-D area/power table")
		optimize  = fs.Bool("optimize", false, "run the Section V-C optimal-vs-random study")
		mixName   = fs.String("mix", "mix-1", "Table III mix for -optimize")
		threads   = fs.Int("threads", 64, "threads per application")
		size      = fs.Int("size", 256, "system size")
		hts       = fs.Int("hts", 16, "Trojan count (paper: 16)")
		samples   = fs.Int("samples", 16, "random placements used to fit Eqn 9")
		seed      = fs.Int64("seed", 1, "random seed")
		parallel  = fs.Int("parallel", 0, "campaign workers (0 = one per CPU; results identical for any count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *areapower:
		printAreaPower()
		return nil
	case *optimize:
		return runOptimize(*mixName, *threads, *size, *hts, *samples, *seed, *parallel)
	default:
		return fmt.Errorf("need -areapower or -optimize")
	}
}

func printAreaPower() {
	inv := trojan.DefaultInventory()
	fmt.Println("Section III-D: hardware Trojan area and power (TSMC 45 nm)")
	fmt.Printf("  circuit: %d comparators x %d bits + %d registers x %d bits (≈%d transistors)\n",
		inv.Comparators, inv.ComparatorBits, inv.Registers, inv.RegisterBits, inv.TransistorEstimate())
	fmt.Printf("  one HT:      %10.4f um^2  %10.5f uW\n", trojan.HTAreaUm2, trojan.HTPowerUW)
	fmt.Printf("  one router:  %10.1f um^2  %10.1f uW (4 VCs, 5-flit FIFO)\n", trojan.RouterAreaUm2, trojan.RouterPowerUW)
	for _, tc := range []struct{ hts, nodes int }{{1, 1}, {60, 512}} {
		r := trojan.Report(tc.hts, tc.nodes)
		fmt.Printf("  %2d HT(s) on %3d router(s): area %10.4f um^2 (%.4f%%), power %9.5f uW (%.5f%%)\n",
			r.HTs, r.Nodes, r.TotalHTAreaUm2, r.AreaFractionOfAllRouters*100,
			r.TotalHTPowerUW, r.PowerFractionOfAllRouters*100)
	}
}

func runOptimize(mixName string, threads, size, hts, samples int, seed int64, workers int) error {
	cfg := core.DefaultConfig()
	cfg.Cores = size
	cfg.MemTraffic = false
	cfg.Seed = seed
	cfg.Workers = workers
	fmt.Printf("Section V-C: optimal vs random placement (%s, %d HTs, %d training samples)\n",
		mixName, hts, samples)
	study, err := core.OptimalVsRandom(cfg, mixName, threads, hts, samples, seed)
	if err != nil {
		return err
	}
	fmt.Printf("  Eqn 9 model fit R^2:        %.3f\n", study.ModelR2)
	fmt.Printf("  Eqn 10 enumeration size:    %d placements\n", study.Evaluated)
	fmt.Printf("  random placement Q:         %.3f ± %.3f\n", study.RandomQMean, study.RandomQStd)
	fmt.Printf("  optimal placement Q:        %.3f\n", study.OptimalQ)
	fmt.Printf("  improvement:                %+.1f%%\n", study.ImprovementPct)
	return nil
}
