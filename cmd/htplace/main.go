// Command htplace covers the attacker-planning experiments: the Section
// III-D area/power accounting table and the Section V-C optimal-vs-random
// placement comparison built on the Eqn 9 model and Eqn 10 enumeration.
// Both are built through the campaign registry (experiments E2, E9) and
// printed through the shared internal/results emitters, so the output
// here and the JSON/CSV written by `htcampaign run` come from one code
// path.
//
// Examples:
//
//	htplace -areapower
//	htplace -optimize -mix mix-4 -hts 16 -samples 20
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/pkg/htsim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		obs.Stderr().Error("htplace: fatal", "error", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("htplace", flag.ContinueOnError)
	var (
		areapower = fs.Bool("areapower", false, "print the Section III-D area/power table")
		optimize  = fs.Bool("optimize", false, "run the Section V-C optimal-vs-random study")
		mixName   = fs.String("mix", "mix-1", "Table III mix for -optimize")
		threads   = fs.Int("threads", 64, "threads per application")
		size      = fs.Int("size", 256, "system size")
		hts       = fs.Int("hts", 16, "Trojan count (paper: 16)")
		samples   = fs.Int("samples", 16, "random placements used to fit Eqn 9")
		topology  = fs.String("topology", "", "network topology: "+strings.Join(htsim.Topologies(), ", "))
		alloc     = fs.String("allocator", "", "budget allocator: "+strings.Join(htsim.Allocators(), ", "))
		seed      = fs.Int64("seed", 1, "random seed")
		parallel  = fs.Int("parallel", 0, "campaign workers (0 = one per CPU; results identical for any count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *areapower:
		t, err := campaign.BuildTableCtx(ctx, "E2", campaign.Params{}, *seed, *parallel)
		if err != nil {
			return err
		}
		if ap, ok := t.(*results.AreaPowerTable); ok {
			fmt.Printf("circuit: ≈%d transistors; one HT %.4f um^2 / %.5f uW; one router %.1f um^2 / %.1f uW\n",
				ap.Transistors, ap.HTAreaUm2, ap.HTPowerUW, ap.RouterAreaUm2, ap.RouterPowerUW)
		}
		return results.WriteText(os.Stdout, t)
	case *optimize:
		t, err := campaign.BuildTableCtx(ctx, "E9", campaign.Params{
			Size: *size, Mixes: []string{*mixName}, Threads: *threads, HTs: *hts, Samples: *samples,
			Topology: *topology, Allocator: *alloc,
		}, *seed, *parallel)
		if err != nil {
			return err
		}
		return results.WriteText(os.Stdout, t)
	default:
		return fmt.Errorf("need -areapower or -optimize")
	}
}
