package main

import (
	"context"
	"testing"
)

func TestRunAreaPower(t *testing.T) {
	if err := run(context.Background(), []string{"-areapower"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunOptimizeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("optimise study is slow")
	}
	err := run(context.Background(), []string{"-optimize", "-mix", "mix-1", "-size", "64", "-threads", "15", "-hts", "6", "-samples", "5"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRequiresAction(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("missing action must fail")
	}
}

func TestRunRejectsUnknownMix(t *testing.T) {
	if err := run(context.Background(), []string{"-optimize", "-mix", "mix-7", "-size", "64"}); err == nil {
		t.Fatal("unknown mix must fail")
	}
}
