// Command attackfx regenerates the attack-effect figures: Fig 5 (Q versus
// infection rate for the four Table III mixes) and Fig 6 (per-application
// performance changes), plus the allocator ablation behind the paper's
// "irrespective of the power budgeting algorithm" claim, the DoS
// attack-class comparison, and the manager-side defense study. Each study
// is built through the campaign registry (experiments E7, E8, E10, X1,
// X2), whose chip configurations are assembled through the pkg/htsim
// option pipeline — the -topology, -routing, -allocator, and
// -defense-config flags name registered plugins and rerun any figure on
// a variant chip (for example `-fig 5 -topology torus`; -defense without
// a value remains the X2 study selector). Results print through the
// shared
// internal/results emitters, so the output here and the JSON/CSV written
// by `htcampaign run` come from one code path.
//
// Examples:
//
//	attackfx -fig 5
//	attackfx -fig 6 -mix mix-4
//	attackfx -ablation
//	attackfx -variants -topology torus -allocator pi
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/workload"
	"repro/pkg/htsim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		obs.Stderr().Error("attackfx: fatal", "error", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("attackfx", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "", "figure to regenerate: 5 or 6")
		ablation = fs.Bool("ablation", false, "run the allocator ablation instead")
		variants = fs.Bool("variants", false, "compare the Section II-B DoS attack classes")
		defend   = fs.Bool("defense", false, "run the manager-side defense study")
		mixName  = fs.String("mix", "", "restrict to one mix (default: all four)")
		threads  = fs.Int("threads", 64, "threads per application (paper: 64)")
		size     = fs.Int("size", 256, "system size (paper: 256)")
		hts      = fs.Int("hts", 16, "Trojan count for -variants/-defense (paper: 16)")
		epochs   = fs.Int("epochs", 10, "budgeting epochs")
		mem      = fs.Bool("mem", false, "enable cache-hierarchy background traffic")
		topology = fs.String("topology", "", "network topology: "+strings.Join(htsim.Topologies(), ", "))
		routing  = fs.String("routing", "", "routing algorithm: "+strings.Join(htsim.Routings(), ", "))
		alloc    = fs.String("allocator", "", "budget allocator: "+strings.Join(htsim.Allocators(), ", "))
		defName  = fs.String("defense-config", "", "manager-side defense for the chip under test: "+strings.Join(htsim.Defenses(), ", "))
		seed     = fs.Int64("seed", 1, "random seed")
		parallel = fs.Int("parallel", 0, "campaign workers (0 = one per CPU; results identical for any count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := campaign.Params{Size: *size, Threads: *threads, Epochs: *epochs, Mem: mem,
		Topology: *topology, Routing: *routing, Allocator: *alloc, Defense: *defName}
	p.Mix = "mix-1"
	if *mixName != "" {
		if _, err := workload.MixByName(*mixName); err != nil {
			return err
		}
		p.Mixes = []string{*mixName}
		p.Mix = *mixName
	}

	var id string
	switch {
	case *ablation:
		id = "E10"
	case *variants:
		id = "X1"
		p.HTs = *hts
	case *defend:
		id = "X2"
		p.HTs = *hts
	case *fig == "5":
		id = "E7"
	case *fig == "6":
		id = "E8"
	default:
		return fmt.Errorf("need -fig 5, -fig 6, -ablation, -variants, or -defense")
	}
	t, err := campaign.BuildTableCtx(ctx, id, p, *seed, *parallel)
	if err != nil {
		return err
	}
	return results.WriteText(os.Stdout, t)
}
