// Command attackfx regenerates the attack-effect figures: Fig 5 (Q versus
// infection rate for the four Table III mixes) and Fig 6 (per-application
// performance changes), plus the allocator ablation behind the paper's
// "irrespective of the power budgeting algorithm" claim.
//
// Examples:
//
//	attackfx -fig 5
//	attackfx -fig 6 -mix mix-4
//	attackfx -ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attackfx:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attackfx", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "", "figure to regenerate: 5 or 6")
		ablation = fs.Bool("ablation", false, "run the allocator ablation instead")
		variants = fs.Bool("variants", false, "compare the Section II-B DoS attack classes")
		defend   = fs.Bool("defense", false, "run the manager-side defense study")
		mixName  = fs.String("mix", "", "restrict to one mix (default: all four)")
		threads  = fs.Int("threads", 64, "threads per application (paper: 64)")
		size     = fs.Int("size", 256, "system size (paper: 256)")
		epochs   = fs.Int("epochs", 10, "budgeting epochs")
		mem      = fs.Bool("mem", false, "enable cache-hierarchy background traffic")
		seed     = fs.Int64("seed", 1, "random seed")
		parallel = fs.Int("parallel", 0, "campaign workers (0 = one per CPU; results identical for any count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Cores = *size
	cfg.Epochs = *epochs
	cfg.MemTraffic = *mem
	cfg.Seed = *seed
	cfg.Workers = *parallel

	mixNames := []string{"mix-1", "mix-2", "mix-3", "mix-4"}
	if *mixName != "" {
		if _, err := workload.MixByName(*mixName); err != nil {
			return err
		}
		mixNames = []string{*mixName}
	}
	targets := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

	switch {
	case *ablation:
		return runAblation(cfg, mixNames[0], *threads)
	case *variants:
		return runVariants(cfg, mixNames[0], *threads)
	case *defend:
		return runDefense(cfg, mixNames[0], *threads)
	case *fig == "5":
		return fig5(cfg, mixNames, *threads, targets)
	case *fig == "6":
		return fig6(cfg, mixNames, *threads, targets)
	default:
		return fmt.Errorf("need -fig 5, -fig 6, -ablation, -variants, or -defense")
	}
}

// runVariants compares the false-data, drop, and loopback attack classes
// under an identical near-manager fleet.
func runVariants(cfg core.Config, mixName string, threads int) error {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	mesh := sys.Mesh()
	placement, err := attack.RingCluster(mesh, mesh.Coord(sys.ManagerNode()), 16, 2, sys.ManagerNode())
	if err != nil {
		return err
	}
	results, err := core.DoSVariantStudy(cfg, mixName, threads, placement)
	if err != nil {
		return err
	}
	fmt.Printf("DoS attack classes (%s, %d HTs near the manager)\n", mixName, placement.Size())
	fmt.Printf("%12s %8s %10s %12s %9s %9s\n", "class", "Q", "victim Θ", "attacker Θ", "dropped", "looped")
	for _, r := range results {
		fmt.Printf("%12s %8.3f %10.3f %12.3f %9d %9d\n",
			r.Mode, r.Q, r.VictimChange, r.AttackerChange, r.Dropped, r.Looped)
	}
	return nil
}

// runDefense prints the manager-side defense study.
func runDefense(cfg core.Config, mixName string, threads int) error {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	mesh := sys.Mesh()
	placement, err := attack.RingCluster(mesh, mesh.Coord(sys.ManagerNode()), 16, 2, sys.ManagerNode())
	if err != nil {
		return err
	}
	results, err := core.DefenseStudy(cfg, mixName, threads, placement)
	if err != nil {
		return err
	}
	fmt.Printf("Manager-side defenses (%s, duty-cycled attack, %d HTs)\n", mixName, placement.Size())
	fmt.Printf("%26s %8s %9s %9s\n", "defense", "Q", "flagged", "repaired")
	for _, r := range results {
		fmt.Printf("%26s %8.3f %9d %9d\n", r.Defense, r.Q, r.Flagged, r.Repaired)
	}
	return nil
}

func fig5(cfg core.Config, mixNames []string, threads int, targets []float64) error {
	fmt.Println("Fig 5: attack effect Q vs infection rate")
	series := make(map[string][]core.QPoint, len(mixNames))
	for _, name := range mixNames {
		pts, err := core.QVsInfection(cfg, name, threads, targets)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		series[name] = pts
	}
	fmt.Printf("%10s", "infection")
	for _, name := range mixNames {
		fmt.Printf(" %10s", name)
	}
	fmt.Println()
	for i, target := range targets {
		fmt.Printf("%10.2f", target)
		for _, name := range mixNames {
			fmt.Printf(" %10.3f", series[name][i].Q)
		}
		fmt.Println()
	}
	return nil
}

func fig6(cfg core.Config, mixNames []string, threads int, targets []float64) error {
	fmt.Println("Fig 6: per-application performance change vs infection rate")
	for _, name := range mixNames {
		pts, err := core.QVsInfection(cfg, name, threads, targets)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("\n%s\n", name)
		fmt.Printf("%10s", "infection")
		for _, app := range pts[0].PerApp {
			fmt.Printf(" %14s", fmt.Sprintf("%s(%c)", app.Name[:min(9, len(app.Name))], app.Role.String()[0]))
		}
		fmt.Println()
		for i, p := range pts {
			fmt.Printf("%10.2f", targets[i])
			for _, app := range p.PerApp {
				fmt.Printf(" %14.3f", app.Change)
			}
			fmt.Println()
		}
	}
	return nil
}

func runAblation(cfg core.Config, mixName string, threads int) error {
	fmt.Printf("Allocator ablation (%s, %d threads): Q at ~0.7 infection under each algorithm\n", mixName, threads)
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s %12s\n", "allocator", "Q", "infection")
	for _, alloc := range budget.All() {
		c := cfg
		c.Allocator = alloc
		sys, err := core.NewSystem(c)
		if err != nil {
			return err
		}
		sc, err := core.MixScenario(mix, threads)
		if err != nil {
			return err
		}
		placement, _ := attack.ForInfectionRate(sys.Mesh(), sys.ManagerNode(), 0.7, sys.Mesh().Nodes()/4)
		sc.Trojans = placement
		attacked, baseline, err := sys.RunPair(sc)
		if err != nil {
			return err
		}
		cmp, err := core.Compare(attacked, baseline)
		if err != nil {
			return err
		}
		fmt.Printf("%10s %10.3f %12.3f\n", alloc.Name(), cmp.Q, attacked.InfectionMeasured)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
