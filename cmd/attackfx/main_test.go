package main

import (
	"context"
	"testing"
)

func smallArgs(extra ...string) []string {
	base := []string{"-size", "64", "-threads", "15", "-epochs", "5"}
	return append(base, extra...)
}

func TestRunVariantsSmall(t *testing.T) {
	if err := run(context.Background(), smallArgs("-variants")); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunDefenseSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("defense study runs eight campaigns")
	}
	if err := run(context.Background(), smallArgs("-defense", "-epochs", "8")); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAblationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs eight campaigns")
	}
	if err := run(context.Background(), smallArgs("-ablation")); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFig5SingleMix(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is slow")
	}
	if err := run(context.Background(), smallArgs("-fig", "5", "-mix", "mix-3")); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRequiresAction(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("missing action must fail")
	}
}

func TestRunRejectsUnknownMix(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "5", "-mix", "mix-9"}); err == nil {
		t.Fatal("unknown mix must fail")
	}
}
