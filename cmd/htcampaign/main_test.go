package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/pkg/htsim"
)

// writeSpec drops a small campaign spec into a temp dir.
func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const smallSpec = `{
	"name": "cli-test", "seed": 1,
	"experiments": [
		{"id": "E1", "params": {"size": 64}},
		{"id": "E3", "params": {"trials": 2}}
	]
}`

func TestRunWritesArtifacts(t *testing.T) {
	spec := writeSpec(t, smallSpec)
	out := filepath.Join(t.TempDir(), "results")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"run", "-spec", spec, "-out", out}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"e1.json", "e1.csv", "e3.json", "e3.csv", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(out, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
	if !strings.Contains(buf.String(), "E3 · ") {
		t.Errorf("text tables not printed: %q", buf.String())
	}
	if !strings.Contains(buf.String(), `campaign "cli-test": 2 experiments`) {
		t.Errorf("missing summary line: %q", buf.String())
	}
}

func TestRunQuiet(t *testing.T) {
	spec := writeSpec(t, smallSpec)
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"run", "-spec", spec, "-out", t.TempDir(), "-quiet"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(buf.String(), "E3 · ") {
		t.Errorf("-quiet must suppress tables: %q", buf.String())
	}
}

func TestValidate(t *testing.T) {
	spec := writeSpec(t, smallSpec)
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"validate", "-spec", spec}, &buf); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !strings.Contains(buf.String(), "is valid") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	spec := writeSpec(t, `{"name": "x", "experiments": [{"id": "E99"}]}`)
	if err := run(context.Background(), []string{"validate", "-spec", spec}, &bytes.Buffer{}); err == nil {
		t.Fatal("malformed spec must fail validation")
	}
}

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"list"}, &buf); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, id := range []string{"E1", "E10", "X2"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("list output missing %s: %q", id, buf.String())
		}
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	tests := [][]string{
		nil,
		{"frobnicate"},
		{"run"},
		{"validate"},
		{"list", "extra"},
	}
	for _, args := range tests {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v must fail", args)
		}
	}
}

// TestListCoversEveryRegisteredPlugin is the anti-drift gate for the
// listing: every plugin name registered on any axis must appear in
// `htcampaign list` output, so adding a plugin automatically surfaces it
// to users (the companion docs gate, tools/docgate, holds EXPERIMENTS.md
// to the same standard).
func TestListCoversEveryRegisteredPlugin(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"list"}, &buf); err != nil {
		t.Fatalf("list: %v", err)
	}
	// Parse each axis line into its exact comma-separated plugin tokens —
	// substring matching would let "xy" pass vacuously via "torus-xy".
	listed := make(map[string]map[string]bool)
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		plugins := make(map[string]bool)
		for _, name := range strings.Split(strings.Join(fields[1:], " "), ", ") {
			plugins[name] = true
		}
		listed[fields[0]] = plugins
	}
	for _, axis := range htsim.Axes() {
		plugins, ok := listed[axis.Name]
		if !ok {
			t.Errorf("list output missing axis %q", axis.Name)
			continue
		}
		for _, plugin := range axis.Plugins {
			if !plugins[plugin] {
				t.Errorf("list output missing %s plugin %q", axis.Name, plugin)
			}
		}
	}
}
