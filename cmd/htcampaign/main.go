// Command htcampaign is the declarative front door to the evaluation: it
// runs a campaign spec naming any subset of the DESIGN.md §2 experiments
// (E1–E10, X1–X2) and writes each experiment's results table as JSON and
// CSV artifacts plus a manifest, printing the same tables as text.
//
// Artifacts are byte-identical for any -parallel value at a fixed seed.
//
// Examples:
//
//	htcampaign run -spec specs/paper.json -out results/
//	htcampaign run -spec specs/smoke.json -out results/ -parallel 8 -quiet
//	htcampaign validate -spec specs/paper.json
//	htcampaign list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/pkg/htsim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		obs.Stderr().Error("htcampaign: fatal", "error", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("need a subcommand: run, validate, or list")
	}
	switch args[0] {
	case "run":
		return runCampaign(ctx, args[1:], out)
	case "validate":
		return validateSpec(args[1:], out)
	case "list":
		return listExperiments(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want run, validate, or list)", args[0])
	}
}

func runCampaign(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("htcampaign run", flag.ContinueOnError)
	var (
		specPath = fs.String("spec", "", "campaign spec file (JSON)")
		outDir   = fs.String("out", "results", "artifact output directory")
		parallel = fs.Int("parallel", 0, "worker count (0 = one per CPU; artifacts identical for any value)")
		quiet    = fs.Bool("quiet", false, "suppress the per-experiment text tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("need -spec")
	}
	spec, err := campaign.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	man, tables, err := campaign.RunCtx(ctx, spec, *outDir, *parallel, campaign.Progress{})
	if err != nil {
		return err
	}
	if !*quiet {
		for _, t := range tables {
			if err := results.WriteText(out, t); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	fmt.Fprintf(out, "campaign %q: %d experiments, artifacts in %s (manifest.json indexes them)\n",
		man.Name, len(man.Artifacts), *outDir)
	return nil
}

func validateSpec(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("htcampaign validate", flag.ContinueOnError)
	specPath := fs.String("spec", "", "campaign spec file (JSON)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("need -spec")
	}
	spec, err := campaign.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "spec %q is valid: %d experiments, seed %d\n", spec.Name, len(spec.Experiments), spec.Seed)
	return nil
}

func listExperiments(args []string, out io.Writer) error {
	if len(args) != 0 {
		return fmt.Errorf("list takes no arguments")
	}
	fmt.Fprintln(out, "experiments:")
	for _, e := range campaign.Experiments() {
		fmt.Fprintf(out, "  %-4s %s\n", e.ID, e.Title)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "plugin registries (spec params and pkg/htsim options resolve these names):")
	for _, axis := range htsim.Axes() {
		fmt.Fprintf(out, "  %-16s %s\n", axis.Name, strings.Join(axis.Plugins, ", "))
	}
	return nil
}
