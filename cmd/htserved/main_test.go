package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the server goroutine writes
// logs while the test polls them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeAndShutdown boots the service on an ephemeral port, submits a
// tiny campaign over real HTTP, and verifies cancelling the context shuts
// the server down cleanly.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-parallel", "1",
			"-job-timeout", "5m", "-shutdown-timeout", "5s"}, &buf)
	}()

	// The listen address arrives as the addr attr of the structured
	// "listening" log line once the listener is up.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && base == "" {
		if out := buf.String(); strings.Contains(out, "msg=listening") {
			for _, f := range strings.Fields(out) {
				if a, ok := strings.CutPrefix(f, "addr="); ok {
					base = "http://" + a
					break
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("server never reported its address; output: %q", buf.String())
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	spec := `{"name":"boot","seed":1,"experiments":[{"id":"E2"}]}`
	resp, err = http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for time.Now().Before(deadline) && st.State != "done" {
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job state %q, want done", st.State)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(buf.String(), "shutting down") {
		t.Errorf("missing shutdown log; output: %q", buf.String())
	}
}

// TestBadFlags rejects unknown flags.
func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("want flag error")
	}
}

// TestBadFaultSpec refuses to boot on a malformed HTSERVED_FAULTS value
// — a chaos drill with a typo must fail loudly, not run without faults.
func TestBadFaultSpec(t *testing.T) {
	t.Setenv("HTSERVED_FAULTS", "job.run:explode")
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("run with bad fault spec = %v, want unknown-mode parse error", err)
	}
}
