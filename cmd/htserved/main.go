// Command htserved runs the simulation service: an HTTP API that queues
// campaign specs and single-sim requests, caches results by content
// address, and streams live per-epoch progress as Server-Sent Events.
// See internal/server for the API surface and DESIGN.md §8 for the
// architecture.
//
// Examples:
//
//	htserved -addr :8080
//	htserved -addr 127.0.0.1:8099 -parallel 8 -jobs 2 -cache-dir /var/cache/htserved
//	htserved -job-timeout 10m -shutdown-timeout 15s
//	HTSERVED_FAULTS="job.run:panic:times=1" htserved   # chaos drill
//
//	curl -XPOST --data-binary @specs/paper.json localhost:8080/v1/campaigns
//	curl localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/v1/jobs/job-000001/events           # SSE stream
//	curl localhost:8080/v1/jobs/job-000001/artifacts/e7.csv
//	curl -XDELETE localhost:8080/v1/jobs/job-000001
//
// SIGINT/SIGTERM shut the service down gracefully: the listener stops,
// running jobs are cancelled through their contexts, and in-flight
// handlers get a -shutdown-timeout drain window.
//
// Ops surface: -job-timeout bounds every job's queue-wait plus run,
// -shutdown-timeout bounds the graceful drain, and the HTTP server runs
// with ReadHeaderTimeout/IdleTimeout so slow-loris clients and idle
// keep-alives cannot pin connections (WriteTimeout stays unset — SSE
// streams are legitimately long-lived). The HTSERVED_FAULTS environment
// variable arms the internal/faultinject registry for chaos drills; see
// DESIGN.md §9 for the failure-modes matrix.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "htserved:", err)
		os.Exit(1)
	}
}

// run parses flags, starts the service, and blocks until the listener
// fails or ctx is cancelled (then shuts down gracefully).
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("htserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		parallel     = fs.Int("parallel", 0, "exp-pool worker budget per job (0 = one per CPU; results identical for any value)")
		jobs         = fs.Int("jobs", 1, "concurrently running jobs")
		queue        = fs.Int("queue", 16, "job queue depth (submissions beyond it get 429 + Retry-After)")
		entries      = fs.Int("cache-entries", 64, "in-memory result cache entries (LRU)")
		cacheDir     = fs.String("cache-dir", "", "directory for the disk cache tier (empty = memory only)")
		jobTimeout   = fs.Duration("job-timeout", 0, "per-job deadline covering queue-slot wait plus run (0 = none)")
		drainTimeout = fs.Duration("shutdown-timeout", 5*time.Second, "graceful-shutdown drain window for in-flight requests")
		sseWrite     = fs.Duration("sse-write-timeout", 0, "per-frame SSE write deadline for stuck subscribers (0 = 10s default, negative = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	faults, err := faultinject.FromEnv(os.Getenv)
	if err != nil {
		return err
	}
	svc, err := server.New(server.Options{
		Workers:         *parallel,
		Jobs:            *jobs,
		QueueDepth:      *queue,
		CacheEntries:    *entries,
		CacheDir:        *cacheDir,
		JobTimeout:      *jobTimeout,
		Faults:          faults,
		SSEWriteTimeout: *sseWrite,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler: svc.Handler(),
		// Bound the header read and idle keep-alives so stalled clients
		// cannot pin connections forever. No WriteTimeout: SSE streams are
		// long-lived by design, and job-side deadlines come from
		// -job-timeout instead.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(out, "htserved: listening on %s (jobs %d, queue %d, cache %d entries)\n",
		ln.Addr(), *jobs, *queue, *entries)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "htserved: shutting down")
	// Cancel jobs first: that seals every event log, so open SSE streams
	// end and Shutdown's drain isn't held hostage by live watchers.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
