// Command htserved runs the simulation service: an HTTP API that queues
// campaign specs and single-sim requests, caches results by content
// address, and streams live per-epoch progress as Server-Sent Events.
// See internal/server for the API surface and DESIGN.md §8 for the
// architecture.
//
// Examples:
//
//	htserved -addr :8080
//	htserved -addr 127.0.0.1:8099 -parallel 8 -jobs 2 -cache-dir /var/cache/htserved
//	htserved -job-timeout 10m -shutdown-timeout 15s
//	HTSERVED_FAULTS="job.run:panic:times=1" htserved   # chaos drill
//
// Distributed execution (see DESIGN.md §11 and README "Scaling it out"):
//
//	htserved -addr :8081 &                              # worker 1
//	htserved -addr :8082 &                              # worker 2
//	htserved -addr :8080 -workers http://127.0.0.1:8081,http://127.0.0.1:8082
//
//	htserved -addr :8080 -dist &                        # empty-pool coordinator
//	htserved -addr :8081 -worker -coordinator http://127.0.0.1:8080   # self-registers
//
// Durability (see DESIGN.md §12 and README "Surviving crashes"):
//
//	htserved -addr :8080 -dist -journal-dir /var/lib/htserved
//
// With -journal-dir set, every accepted job is fsync'd to a write-ahead
// journal before its 202, and a restart (even after kill -9) replays
// the unfinished backlog; a coordinator additionally checkpoints
// completed shard results there, so a resumed campaign recomputes only
// shards that never finished. Workers heartbeat their registration
// (-heartbeat) with capped-jitter backoff on failure, and SIGTERM
// drains gracefully: in-flight shards finish, then the worker
// deregisters from the pool.
//
//	curl -XPOST --data-binary @specs/paper.json localhost:8080/v1/campaigns
//	curl localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/v1/jobs/job-000001/events           # SSE stream
//	curl localhost:8080/v1/jobs/job-000001/artifacts/e7.csv
//	curl -XDELETE localhost:8080/v1/jobs/job-000001
//
// SIGINT/SIGTERM shut the service down gracefully: the listener stops,
// running jobs are cancelled through their contexts, and in-flight
// handlers get a -shutdown-timeout drain window.
//
// Ops surface: -job-timeout bounds every job's queue-wait plus run,
// -shutdown-timeout bounds the graceful drain, and the HTTP server runs
// with ReadHeaderTimeout/IdleTimeout so slow-loris clients and idle
// keep-alives cannot pin connections (WriteTimeout stays unset — SSE
// streams are legitimately long-lived). The HTSERVED_FAULTS environment
// variable arms the internal/faultinject registry for chaos drills; see
// DESIGN.md §9 for the failure-modes matrix.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		obs.Stderr().Error("htserved: fatal", "error", err)
		os.Exit(1)
	}
}

// run parses flags, starts the service, and blocks until the listener
// fails or ctx is cancelled (then shuts down gracefully).
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("htserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		parallel     = fs.Int("parallel", 0, "exp-pool worker budget per job (0 = one per CPU; results identical for any value)")
		jobs         = fs.Int("jobs", 1, "concurrently running jobs")
		queue        = fs.Int("queue", 16, "job queue depth (submissions beyond it get 429 + Retry-After)")
		entries      = fs.Int("cache-entries", 64, "in-memory result cache entries (LRU)")
		cacheDir     = fs.String("cache-dir", "", "directory for the disk cache tier (empty = memory only)")
		jobTimeout   = fs.Duration("job-timeout", 0, "per-job deadline covering queue-slot wait plus run (0 = none)")
		drainTimeout = fs.Duration("shutdown-timeout", 5*time.Second, "graceful-shutdown drain window for in-flight requests")
		sseWrite     = fs.Duration("sse-write-timeout", 0, "per-frame SSE write deadline for stuck subscribers (0 = 10s default, negative = none)")

		// Distributed execution (DESIGN.md §11).
		dist         = fs.Bool("dist", false, "run as a coordinator: campaign jobs are sharded across the worker pool (implied by -workers)")
		workerURLs   = fs.String("workers", "", "comma-separated worker base URLs to seed the coordinator pool (implies -dist)")
		shards       = fs.Int("shards", 0, "max shards per experiment when coordinating (0 = 2x the exp-pool budget)")
		shardRetries = fs.Int("shard-retries", 2, "redispatch attempts per shard after a worker failure or timeout")
		shardTimeout = fs.Duration("shard-timeout", 0, "per-shard dispatch deadline (0 = 5m default)")
		tenantQuota  = fs.Int("tenant-quota", 0, "max queued-plus-running jobs per X-Tenant header value (0 = no quota)")
		workerMode   = fs.Bool("worker", false, "register this instance with a coordinator at startup (requires -coordinator)")
		coordinator  = fs.String("coordinator", "", "coordinator base URL to register with in -worker mode")
		advertise    = fs.String("advertise", "", "URL the coordinator should reach this worker at (default derived from the listen address)")
		heartbeat    = fs.Duration("heartbeat", 5*time.Second, "worker heartbeat interval: how often -worker re-registers with the coordinator")

		// Durability & recovery (DESIGN.md §12).
		journalDir    = fs.String("journal-dir", "", "directory for the write-ahead job journal: accepted jobs survive crashes and replay on boot (empty = no journal)")
		checkpointDir = fs.String("checkpoint-dir", "", "directory for coordinator shard checkpoints (default <journal-dir>/shard-checkpoints when journaling)")
		hedgeDelay    = fs.Duration("hedge-delay", 0, "straggler hedge delay before redispatching a slow shard to a second worker (0 = adaptive p99, negative = off)")

		// Observability (DESIGN.md §13).
		logFormat = fs.String("log-format", "text", "structured log format: text or json")
		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn, or error")
		noTrace   = fs.Bool("no-trace", false, "disable per-job trace trees (GET /v1/jobs/{id}/trace answers 404)")
		pprofFlag = fs.Bool("pprof", false, "mount Go profiling handlers under /debug/pprof")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode && *coordinator == "" {
		return errors.New("-worker requires -coordinator=URL")
	}
	faults, err := faultinject.FromEnv(os.Getenv)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(out, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	svc, err := server.New(server.Options{
		Workers:         *parallel,
		Jobs:            *jobs,
		QueueDepth:      *queue,
		CacheEntries:    *entries,
		CacheDir:        *cacheDir,
		JobTimeout:      *jobTimeout,
		Faults:          faults,
		SSEWriteTimeout: *sseWrite,
		Coordinator:     *dist,
		WorkerURLs:      splitURLs(*workerURLs),
		MaxShards:       *shards,
		ShardRetries:    *shardRetries,
		ShardTimeout:    *shardTimeout,
		TenantQuota:     *tenantQuota,
		JournalDir:      *journalDir,
		CheckpointDir:   *checkpointDir,
		HedgeDelay:      *hedgeDelay,
		Logger:          logger,
		DisableTracing:  *noTrace,
		EnablePprof:     *pprofFlag,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	var workerDone chan struct{}
	if *workerMode {
		// Run the worker lifecycle in the background: register with the
		// coordinator (capped-jitter backoff — it may still be booting),
		// heartbeat the registration so a restarted coordinator relearns
		// the pool, and deregister when drain begins. The worker serves
		// shards regardless; the lifecycle only manages pool membership.
		selfURL := *advertise
		if selfURL == "" {
			selfURL = "http://" + hostPort(ln.Addr().String())
		}
		workerDone = make(chan struct{})
		go func() {
			defer close(workerDone)
			workerLifecycle(ctx, logger, *coordinator, selfURL, *heartbeat)
		}()
	}
	srv := &http.Server{
		Handler: svc.Handler(),
		// Bound the header read and idle keep-alives so stalled clients
		// cannot pin connections forever. No WriteTimeout: SSE streams are
		// long-lived by design, and job-side deadlines come from
		// -job-timeout instead.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	logger.Info("listening", "addr", ln.Addr().String(),
		"jobs", *jobs, "queue", *queue, "cache_entries", *entries)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	if workerDone != nil {
		// Deregister before draining: the coordinator must stop placing
		// new shards here while the in-flight ones finish. The lifecycle
		// goroutine bounds its own exit, but cap the wait regardless.
		select {
		case <-workerDone:
		case <-time.After(5 * time.Second):
		}
	}
	// Cancel jobs first: that seals every event log, so open SSE streams
	// end and Shutdown's drain isn't held hostage by live watchers.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// splitURLs parses the -workers flag: comma-separated base URLs, blanks
// dropped.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// hostPort turns a listener address into one a coordinator can dial:
// an unspecified host (":8081", "[::]:8081", "0.0.0.0:8081") becomes
// loopback — the right default for the single-machine quickstart, and
// -advertise overrides it for real deployments.
func hostPort(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// Worker registration backoff: full jitter over a doubling window.
const (
	registerBaseBackoff = 250 * time.Millisecond
	registerMaxBackoff  = 15 * time.Second
)

// registerBackoff returns the wait before registration attempt+1: full
// jitter drawn from a window that doubles per attempt, capped. The rng
// is deterministic (seeded from the worker's advertised URL), so the
// schedule is reproducible in tests yet decorrelated across a fleet of
// workers retrying against the same rebooting coordinator.
func registerBackoff(attempt int, rng *rand.Rand) time.Duration {
	window := registerBaseBackoff
	for i := 0; i < attempt && window < registerMaxBackoff; i++ {
		window *= 2
	}
	if window > registerMaxBackoff {
		window = registerMaxBackoff
	}
	return time.Duration(rng.Int63n(int64(window))) + time.Millisecond
}

// workerLifecycle manages this worker's pool membership end to end:
// register with capped-jitter backoff (the coordinator may boot later,
// or be rebooting right now), re-register every heartbeat interval so a
// coordinator restarted from its journal relearns the pool before its
// replayed campaigns need workers, and — once drain begins — stop
// retrying and deregister so the coordinator stops placing new shards
// here. Failures are logged but never fatal: the worker still serves
// shards if the operator registers it by hand.
func workerLifecycle(ctx context.Context, logger *slog.Logger, coordinator, selfURL string, heartbeat time.Duration) {
	if heartbeat <= 0 {
		heartbeat = 5 * time.Second
	}
	client := &http.Client{Timeout: 5 * time.Second}
	rng := rand.New(rand.NewSource(exp.StreamSeed(1, "register/"+selfURL)))
	var id string
	registered := false
	attempt := 0
	for {
		newID, err := registerOnce(ctx, client, coordinator, selfURL)
		if ctx.Err() != nil {
			// Drain began: no more retries, and if the pool ever knew us,
			// leave it cleanly.
			if registered {
				deregister(logger, client, coordinator, id)
			}
			return
		}
		wait := heartbeat
		if err == nil {
			id = newID
			if !registered {
				logger.Info("registered with coordinator",
					"coordinator", coordinator, "worker", selfURL, "worker_id", id)
			}
			registered = true
			attempt = 0
		} else {
			if attempt == 0 {
				logger.Warn("worker registration pending, backing off", "coordinator", coordinator, "error", err)
			}
			wait = registerBackoff(attempt, rng)
			attempt++
		}
		select {
		case <-ctx.Done():
			if registered {
				deregister(logger, client, coordinator, id)
			}
			return
		case <-time.After(wait):
		}
	}
}

// registerOnce POSTs this worker's URL to the coordinator's /v1/workers
// and returns the stable pool id the coordinator assigned (idempotent —
// this doubles as the heartbeat).
func registerOnce(ctx context.Context, client *http.Client, coordinator, selfURL string) (string, error) {
	body := fmt.Sprintf(`{"url":%q}`, selfURL)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(coordinator, "/")+"/v1/workers", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("coordinator answered %s", resp.Status)
	}
	var reply struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return "", fmt.Errorf("decode registration reply: %w", err)
	}
	return reply.ID, nil
}

// deregister removes this worker from the coordinator's pool at drain
// time. The drain context is already cancelled, so the DELETE runs
// under its own short deadline; a 404 means the pool already forgot us,
// which is the outcome we wanted.
func deregister(logger *slog.Logger, client *http.Client, coordinator, id string) {
	if id == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		strings.TrimRight(coordinator, "/")+"/v1/workers/"+id, nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		logger.Warn("worker deregistration failed", "coordinator", coordinator, "worker_id", id, "error", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	logger.Info("deregistered from coordinator", "coordinator", coordinator, "worker_id", id)
}
