// Command htserved runs the simulation service: an HTTP API that queues
// campaign specs and single-sim requests, caches results by content
// address, and streams live per-epoch progress as Server-Sent Events.
// See internal/server for the API surface and DESIGN.md §8 for the
// architecture.
//
// Examples:
//
//	htserved -addr :8080
//	htserved -addr 127.0.0.1:8099 -parallel 8 -jobs 2 -cache-dir /var/cache/htserved
//	htserved -job-timeout 10m -shutdown-timeout 15s
//	HTSERVED_FAULTS="job.run:panic:times=1" htserved   # chaos drill
//
// Distributed execution (see DESIGN.md §11 and README "Scaling it out"):
//
//	htserved -addr :8081 &                              # worker 1
//	htserved -addr :8082 &                              # worker 2
//	htserved -addr :8080 -workers http://127.0.0.1:8081,http://127.0.0.1:8082
//
//	htserved -addr :8080 -dist &                        # empty-pool coordinator
//	htserved -addr :8081 -worker -coordinator http://127.0.0.1:8080   # self-registers
//
//	curl -XPOST --data-binary @specs/paper.json localhost:8080/v1/campaigns
//	curl localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/v1/jobs/job-000001/events           # SSE stream
//	curl localhost:8080/v1/jobs/job-000001/artifacts/e7.csv
//	curl -XDELETE localhost:8080/v1/jobs/job-000001
//
// SIGINT/SIGTERM shut the service down gracefully: the listener stops,
// running jobs are cancelled through their contexts, and in-flight
// handlers get a -shutdown-timeout drain window.
//
// Ops surface: -job-timeout bounds every job's queue-wait plus run,
// -shutdown-timeout bounds the graceful drain, and the HTTP server runs
// with ReadHeaderTimeout/IdleTimeout so slow-loris clients and idle
// keep-alives cannot pin connections (WriteTimeout stays unset — SSE
// streams are legitimately long-lived). The HTSERVED_FAULTS environment
// variable arms the internal/faultinject registry for chaos drills; see
// DESIGN.md §9 for the failure-modes matrix.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "htserved:", err)
		os.Exit(1)
	}
}

// run parses flags, starts the service, and blocks until the listener
// fails or ctx is cancelled (then shuts down gracefully).
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("htserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		parallel     = fs.Int("parallel", 0, "exp-pool worker budget per job (0 = one per CPU; results identical for any value)")
		jobs         = fs.Int("jobs", 1, "concurrently running jobs")
		queue        = fs.Int("queue", 16, "job queue depth (submissions beyond it get 429 + Retry-After)")
		entries      = fs.Int("cache-entries", 64, "in-memory result cache entries (LRU)")
		cacheDir     = fs.String("cache-dir", "", "directory for the disk cache tier (empty = memory only)")
		jobTimeout   = fs.Duration("job-timeout", 0, "per-job deadline covering queue-slot wait plus run (0 = none)")
		drainTimeout = fs.Duration("shutdown-timeout", 5*time.Second, "graceful-shutdown drain window for in-flight requests")
		sseWrite     = fs.Duration("sse-write-timeout", 0, "per-frame SSE write deadline for stuck subscribers (0 = 10s default, negative = none)")

		// Distributed execution (DESIGN.md §11).
		dist         = fs.Bool("dist", false, "run as a coordinator: campaign jobs are sharded across the worker pool (implied by -workers)")
		workerURLs   = fs.String("workers", "", "comma-separated worker base URLs to seed the coordinator pool (implies -dist)")
		shards       = fs.Int("shards", 0, "max shards per experiment when coordinating (0 = 2x the exp-pool budget)")
		shardRetries = fs.Int("shard-retries", 2, "redispatch attempts per shard after a worker failure or timeout")
		shardTimeout = fs.Duration("shard-timeout", 0, "per-shard dispatch deadline (0 = 5m default)")
		tenantQuota  = fs.Int("tenant-quota", 0, "max queued-plus-running jobs per X-Tenant header value (0 = no quota)")
		workerMode   = fs.Bool("worker", false, "register this instance with a coordinator at startup (requires -coordinator)")
		coordinator  = fs.String("coordinator", "", "coordinator base URL to register with in -worker mode")
		advertise    = fs.String("advertise", "", "URL the coordinator should reach this worker at (default derived from the listen address)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode && *coordinator == "" {
		return errors.New("-worker requires -coordinator=URL")
	}
	faults, err := faultinject.FromEnv(os.Getenv)
	if err != nil {
		return err
	}
	svc, err := server.New(server.Options{
		Workers:         *parallel,
		Jobs:            *jobs,
		QueueDepth:      *queue,
		CacheEntries:    *entries,
		CacheDir:        *cacheDir,
		JobTimeout:      *jobTimeout,
		Faults:          faults,
		SSEWriteTimeout: *sseWrite,
		Coordinator:     *dist,
		WorkerURLs:      splitURLs(*workerURLs),
		MaxShards:       *shards,
		ShardRetries:    *shardRetries,
		ShardTimeout:    *shardTimeout,
		TenantQuota:     *tenantQuota,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *workerMode {
		// Register with the coordinator in the background, retrying until
		// it accepts — the coordinator may still be booting. The worker
		// serves shards regardless; registration only adds it to the pool.
		selfURL := *advertise
		if selfURL == "" {
			selfURL = "http://" + hostPort(ln.Addr().String())
		}
		go registerWithCoordinator(ctx, out, *coordinator, selfURL)
	}
	srv := &http.Server{
		Handler: svc.Handler(),
		// Bound the header read and idle keep-alives so stalled clients
		// cannot pin connections forever. No WriteTimeout: SSE streams are
		// long-lived by design, and job-side deadlines come from
		// -job-timeout instead.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(out, "htserved: listening on %s (jobs %d, queue %d, cache %d entries)\n",
		ln.Addr(), *jobs, *queue, *entries)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "htserved: shutting down")
	// Cancel jobs first: that seals every event log, so open SSE streams
	// end and Shutdown's drain isn't held hostage by live watchers.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// splitURLs parses the -workers flag: comma-separated base URLs, blanks
// dropped.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// hostPort turns a listener address into one a coordinator can dial:
// an unspecified host (":8081", "[::]:8081", "0.0.0.0:8081") becomes
// loopback — the right default for the single-machine quickstart, and
// -advertise overrides it for real deployments.
func hostPort(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// registerWithCoordinator POSTs this worker's URL to the coordinator's
// /v1/workers until it succeeds (the coordinator may boot later), then
// exits. Failures are logged but never fatal: the worker still serves
// shards if the operator registers it by hand.
func registerWithCoordinator(ctx context.Context, out io.Writer, coordinator, selfURL string) {
	body := fmt.Sprintf(`{"url":%q}`, selfURL)
	client := &http.Client{Timeout: 5 * time.Second}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			strings.TrimRight(coordinator, "/")+"/v1/workers", strings.NewReader(body))
		if err != nil {
			fmt.Fprintf(out, "htserved: worker registration failed permanently: %v\n", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				fmt.Fprintf(out, "htserved: registered with coordinator %s as %s\n", coordinator, selfURL)
				return
			}
			err = fmt.Errorf("coordinator answered %s", resp.Status)
		}
		if attempt == 0 {
			fmt.Fprintf(out, "htserved: worker registration pending (%v), retrying\n", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second):
		}
	}
}
