package main

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/exp"
)

// TestRegisterBackoffWindowsAndDeterminism pins the worker-registration
// backoff contract: full jitter over a window that doubles per attempt
// and caps at registerMaxBackoff, never zero (the +1ms floor), and
// deterministic for a given rng seed — the schedule a chaos drill
// observes is the schedule a rerun observes.
func TestRegisterBackoffWindowsAndDeterminism(t *testing.T) {
	window := func(attempt int) time.Duration {
		w := registerBaseBackoff
		for i := 0; i < attempt && w < registerMaxBackoff; i++ {
			w *= 2
		}
		if w > registerMaxBackoff {
			w = registerMaxBackoff
		}
		return w
	}
	rng := rand.New(rand.NewSource(exp.StreamSeed(1, "register/http://w:1")))
	sawJitter := false
	var prev time.Duration
	for attempt := 0; attempt <= 12; attempt++ {
		d := registerBackoff(attempt, rng)
		w := window(attempt)
		if d < time.Millisecond || d > w+time.Millisecond {
			t.Fatalf("attempt %d: backoff %v outside (1ms, %v]", attempt, d, w+time.Millisecond)
		}
		if attempt > 0 && d != prev {
			sawJitter = true
		}
		prev = d
	}
	// The deep-attempt window must be the cap, not an ever-growing wait.
	if w := window(20); w != registerMaxBackoff {
		t.Fatalf("window(20) = %v, want capped at %v", w, registerMaxBackoff)
	}
	if !sawJitter {
		t.Fatal("13 draws produced identical backoffs — jitter is not being applied")
	}

	// Same seed, same schedule: reruns of a drill reproduce exactly.
	r1 := rand.New(rand.NewSource(exp.StreamSeed(7, "register/http://w:1")))
	r2 := rand.New(rand.NewSource(exp.StreamSeed(7, "register/http://w:1")))
	for attempt := 0; attempt < 8; attempt++ {
		if d1, d2 := registerBackoff(attempt, r1), registerBackoff(attempt, r2); d1 != d2 {
			t.Fatalf("attempt %d: same seed drew %v and %v", attempt, d1, d2)
		}
	}
}
