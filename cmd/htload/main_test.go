package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/server"
)

// TestRunAgainstLiveServer drives the CLI end to end: a live in-process
// htserved, a small closed-loop run with verification on, and the
// BENCH_SERVE.json contract (scenarios, totals, schedule, zero
// verification failures).
func TestRunAgainstLiveServer(t *testing.T) {
	svc, err := server.New(server.Options{Workers: 1, Jobs: 2, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	out := filepath.Join(t.TempDir(), "BENCH_SERVE.json")
	var stdout bytes.Buffer
	err = run([]string{
		"-target", ts.URL,
		"-mode", "closed",
		"-clients", "3",
		"-requests", "6",
		"-seed", "21",
		"-out", out,
		"-quiet",
	}, &stdout)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, stdout.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Totals struct {
			Ops int `json:"ops"`
		} `json:"totals"`
		VerifyFailures int `json:"verify_failures"`
		Schedule       struct {
			Ops []json.RawMessage `json:"ops"`
		} `json:"schedule"`
	}
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatalf("BENCH_SERVE.json undecodable: %v", err)
	}
	if report.Totals.Ops != 18 || len(report.Schedule.Ops) != 18 {
		t.Fatalf("report covers %d ops, schedule %d, want 18", report.Totals.Ops, len(report.Schedule.Ops))
	}
	if report.VerifyFailures != 0 {
		t.Fatalf("verify_failures = %d, want 0", report.VerifyFailures)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("verification: all responses OK")) {
		t.Fatalf("missing verification line in output:\n%s", stdout.String())
	}
}

// TestRunRejectsBadFlags pins config error paths.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -target accepted")
	}
	if err := run([]string{"-target", "http://x", "-mode", "sideways"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-target", "http://x", "-mix", "nope=1"}, &out); err == nil {
		t.Error("unknown mix kind accepted")
	}
	var verr errVerification
	if errors.As(errVerification(3), &verr); int(verr) != 3 {
		t.Error("errVerification does not round-trip")
	}
}

// TestParseMix covers the mix flag grammar.
func TestParseMix(t *testing.T) {
	m, err := parseMix("cached=0.5, sse=0.25,cancel=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if m.CampaignCached != 0.5 || m.SSE != 0.25 || m.Cancel != 0.25 || m.Sim != 0 {
		t.Fatalf("parsed mix %+v", m)
	}
	for _, bad := range []string{"cached", "cached=x", "cached=-1", "=1", "unknown=1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}
