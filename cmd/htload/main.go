// Command htload is the deterministic load-test harness for htserved:
// it drives a live service with a seeded, reproducible mix of cached
// and uncached campaign submissions, single-sim requests, artifact
// fetches, SSE subscriber churn, and cancellations, verifies every
// response (status class, artifact byte-identity against a locally
// simulated reference, SSE id monotonicity), and writes a
// machine-readable BENCH_SERVE.json plus a human summary table.
//
// Examples:
//
//	htload -target http://127.0.0.1:8080                        # closed loop, defaults
//	htload -target http://127.0.0.1:8080 -mode open -rate 80 -duration 30s -clients 16
//	htload -target http://127.0.0.1:8080 -seed 7 -nonce "$(date +%s)"  # bust the server cache
//	htload -target http://127.0.0.1:8080 -mix cached=0.5,sse=0.5
//
// The same -seed always produces the same request schedule (any
// -workers value); -nonce perturbs payloads at execution time so a
// rerun misses the server's content-addressed cache without changing
// the schedule. The process exits nonzero when any verification
// failed, which makes it a CI gate: boot htserved, run htload, assert
// exit 0.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		obs.Stderr().Error("htload: fatal", "error", err)
		os.Exit(1)
	}
}

// errVerification marks a completed run with verification failures — a
// distinct exit path from config/transport errors, same exit code.
type errVerification int

func (e errVerification) Error() string {
	return fmt.Sprintf("%d verification failures (see the report)", int(e))
}

// run parses flags, executes the load test, and writes the outputs.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("htload", flag.ContinueOnError)
	var (
		target   = fs.String("target", "", "base URL of the htserved instance (required)")
		mode     = fs.String("mode", "closed", "loop mode: closed (fixed ops per client) or open (scheduled arrival rate)")
		clients  = fs.Int("clients", 4, "independent logical clients (one seeded RNG stream each)")
		requests = fs.Int("requests", 25, "closed loop: ops per client")
		duration = fs.Duration("duration", 10*time.Second, "open loop: schedule horizon")
		rate     = fs.Float64("rate", 50, "open loop: aggregate arrival rate, ops/sec")
		seed     = fs.Int64("seed", 1, "schedule seed (same seed = byte-identical schedule)")
		nonce    = fs.String("nonce", "", "execution-time payload perturbation (cache busting; never changes the schedule)")
		workers  = fs.Int("workers", 0, "executor parallelism (0 = one per client; schedule identical for any value)")
		mix      = fs.String("mix", "", "op-kind weights, e.g. cached=0.3,uncached=0.2,sim=0.2,artifact=0.15,sse=0.1,cancel=0.05")
		spec     = fs.String("spec", "", "path of a campaign spec replacing the built-in shared cached payload")
		verify   = fs.Bool("verify", true, "verify every response (status, artifact byte-identity, SSE monotonicity)")
		drainCmd = fs.String("drain-cmd", "", "shell command drain ops run (e.g. a worker SIGTERM-and-relaunch script); required when the mix weighs drain")
		outPath  = fs.String("out", "BENCH_SERVE.json", "machine-readable report path (empty = none)")
		quiet    = fs.Bool("quiet", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := loadgen.Config{
		Target:   strings.TrimRight(*target, "/"),
		Mode:     *mode,
		Clients:  *clients,
		Requests: *requests,
		Duration: *duration,
		Rate:     *rate,
		Seed:     *seed,
		Nonce:    *nonce,
		Workers:  *workers,
		Verify:   *verify,
		DrainCmd: *drainCmd,
	}
	if !*quiet {
		cfg.Progress = out
	}
	if *mix != "" {
		m, err := parseMix(*mix)
		if err != nil {
			return err
		}
		cfg.Mix = m
	}
	if *spec != "" {
		b, err := os.ReadFile(*spec)
		if err != nil {
			return err
		}
		cfg.Spec = string(b)
	}

	report, err := loadgen.Run(cfg)
	if err != nil {
		return err
	}
	report.HumanTable(out)
	if *outPath != "" {
		b, err := report.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "report: %s\n", *outPath)
	}
	if report.VerifyFailures > 0 {
		return errVerification(report.VerifyFailures)
	}
	return nil
}

// mixKeys maps the flag's short names onto Mix fields.
var mixKeys = map[string]func(*loadgen.Mix, float64){
	"cached":   func(m *loadgen.Mix, w float64) { m.CampaignCached = w },
	"uncached": func(m *loadgen.Mix, w float64) { m.CampaignUncached = w },
	"sim":      func(m *loadgen.Mix, w float64) { m.Sim = w },
	"artifact": func(m *loadgen.Mix, w float64) { m.ArtifactGet = w },
	"sse":      func(m *loadgen.Mix, w float64) { m.SSE = w },
	"cancel":   func(m *loadgen.Mix, w float64) { m.Cancel = w },
	// distributed submits per-op-unique campaigns sized for a coordinator
	// target: run the same seed against 1-worker and N-worker pools to
	// measure distributed scaling (BENCH_NOTES.md).
	"distributed": func(m *loadgen.Mix, w float64) { m.Distributed = w },
	// drain interleaves -drain-cmd runs (worker SIGTERM drills) into the
	// load: against a journaled coordinator the run must still finish
	// with zero failed campaigns.
	"drain": func(m *loadgen.Mix, w float64) { m.Drain = w },
}

// parseMix parses "kind=weight,..." (unlisted kinds weigh zero).
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		set := mixKeys[key]
		if !ok || set == nil {
			return m, fmt.Errorf("bad mix element %q (known kinds: cached, uncached, sim, artifact, sse, cancel, distributed, drain)", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight in %q", part)
		}
		set(&m, w)
	}
	return m, nil
}
