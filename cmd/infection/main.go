// Command infection regenerates the infection-rate figures of the paper:
// Fig 3 (infection vs HT count for center/corner managers at sizes 64 and
// 512) and Fig 4 (infection vs system size for the three HT distributions
// at HT counts of size/16 and size/8). Each figure is built through the
// campaign registry (experiments E3–E6, configurations assembled through
// the pkg/htsim option pipeline) and printed through the shared
// internal/results emitters, so the output here and the JSON/CSV written
// by `htcampaign run` come from one code path.
//
// Examples:
//
//	infection -fig 3a
//	infection -fig 4b -trials 100
//	infection -all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/results"
)

// figures maps the CLI figure names onto the campaign experiments.
var figures = map[string]string{"3a": "E3", "3b": "E4", "4a": "E5", "4b": "E6"}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		obs.Stderr().Error("infection: fatal", "error", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("infection", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "", "figure to regenerate: 3a, 3b, 4a, 4b")
		all      = fs.Bool("all", false, "regenerate every figure")
		trials   = fs.Int("trials", 50, "random placements averaged per point")
		seed     = fs.Int64("seed", 1, "random seed")
		parallel = fs.Int("parallel", 0, "trial workers (0 = one per CPU; results are identical for any count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *all {
		for _, f := range []string{"3a", "3b", "4a", "4b"} {
			if err := emit(ctx, f, *trials, *seed, *parallel); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	if *fig == "" {
		return fmt.Errorf("need -fig or -all")
	}
	return emit(ctx, *fig, *trials, *seed, *parallel)
}

// emit builds the figure's results table through the campaign registry
// and prints it.
func emit(ctx context.Context, fig string, trials int, seed int64, workers int) error {
	id, ok := figures[fig]
	if !ok {
		return fmt.Errorf("unknown figure %q (want 3a, 3b, 4a, 4b)", fig)
	}
	t, err := campaign.BuildTableCtx(ctx, id, campaign.Params{Trials: trials}, seed, workers)
	if err != nil {
		return err
	}
	return results.WriteText(os.Stdout, t)
}
