// Command infection regenerates the infection-rate figures of the paper:
// Fig 3 (infection vs HT count for center/corner managers at sizes 64 and
// 512) and Fig 4 (infection vs system size for the three HT distributions
// at HT counts of size/16 and size/8).
//
// Examples:
//
//	infection -fig 3a
//	infection -fig 4b -trials 100
//	infection -all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "infection:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("infection", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "", "figure to regenerate: 3a, 3b, 4a, 4b")
		all      = fs.Bool("all", false, "regenerate every figure")
		trials   = fs.Int("trials", 50, "random placements averaged per point")
		seed     = fs.Int64("seed", 1, "random seed")
		parallel = fs.Int("parallel", 0, "trial workers (0 = one per CPU; results are identical for any count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *all {
		for _, f := range []string{"3a", "3b", "4a", "4b"} {
			if err := emit(f, *trials, *seed, *parallel); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	if *fig == "" {
		return fmt.Errorf("need -fig or -all")
	}
	return emit(*fig, *trials, *seed, *parallel)
}

func emit(fig string, trials int, seed int64, workers int) error {
	switch fig {
	case "3a":
		return fig3(64, counts(30, 7), trials, seed, workers)
	case "3b":
		return fig3(512, counts(60, 7), trials, seed, workers)
	case "4a":
		return fig4(16, trials, seed, workers)
	case "4b":
		return fig4(8, trials, seed, workers)
	default:
		return fmt.Errorf("unknown figure %q (want 3a, 3b, 4a, 4b)", fig)
	}
}

// counts builds n evenly spaced HT counts from 0 to max.
func counts(max, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = max * i / (n - 1)
	}
	return out
}

func fig3(size int, htCounts []int, trials int, seed int64, workers int) error {
	fmt.Printf("Fig 3 (system size %d): infection rate vs number of HTs\n", size)
	center, err := core.InfectionVsHTCountN(size, core.GMCenter, htCounts, trials, seed, workers)
	if err != nil {
		return err
	}
	corner, err := core.InfectionVsHTCountN(size, core.GMCorner, htCounts, trials, seed, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %12s %12s\n", "HTs", "GM-center", "GM-corner")
	for i := range center {
		fmt.Printf("%8d %12.3f %12.3f\n", center[i].HTs, center[i].Rate, corner[i].Rate)
	}
	return nil
}

func fig4(denominator, trials int, seed int64, workers int) error {
	sizes := []int{64, 128, 256, 512}
	fmt.Printf("Fig 4 (HTs = size/%d): infection rate vs system size\n", denominator)
	series := make(map[core.Distribution][]core.DistributionPoint)
	for _, dist := range []core.Distribution{core.DistCenter, core.DistRandom, core.DistCorner} {
		pts, err := core.InfectionByDistributionN(dist, sizes, denominator, trials, seed, workers)
		if err != nil {
			return err
		}
		series[dist] = pts
	}
	fmt.Printf("%8s %10s %10s %10s\n", "size", "center", "random", "corner")
	for i, size := range sizes {
		fmt.Printf("%8d %10.3f %10.3f %10.3f\n", size,
			series[core.DistCenter][i].Rate,
			series[core.DistRandom][i].Rate,
			series[core.DistCorner][i].Rate)
	}
	return nil
}
