package main

import (
	"context"
	"testing"
)

func TestRunFig3a(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "3a", "-trials", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFig4b(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "4b", "-trials", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAll(t *testing.T) {
	if err := run(context.Background(), []string{"-all", "-trials", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "7"}); err == nil {
		t.Fatal("unknown figure must fail")
	}
}

func TestRunRejectsBadTrials(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "3a", "-trials", "-4"}); err == nil {
		t.Fatal("negative trials must fail")
	}
}

func TestRunRequiresFigure(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("missing -fig must fail")
	}
}
