package main

import "testing"

func TestRunFig3a(t *testing.T) {
	if err := run([]string{"-fig", "3a", "-trials", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFig4b(t *testing.T) {
	if err := run([]string{"-fig", "4b", "-trials", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAll(t *testing.T) {
	if err := run([]string{"-all", "-trials", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "7"}); err == nil {
		t.Fatal("unknown figure must fail")
	}
}

func TestRunRequiresFigure(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -fig must fail")
	}
}

func TestCountsSpacing(t *testing.T) {
	got := counts(30, 7)
	if len(got) != 7 || got[0] != 0 || got[6] != 30 {
		t.Fatalf("counts = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("counts not nondecreasing: %v", got)
		}
	}
}
