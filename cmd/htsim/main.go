// Command htsim runs a single hardware-Trojan power-budgeting campaign and
// prints the full report: per-application θ/Θ/Φ, infection rates, the
// attack effect Q, and NoC statistics. It is a thin front end over the
// pkg/htsim SDK: every axis flag (-topology, -allocator, -defense,
// -routing, -placement, -strategy, -mode, -mix) names a registered plugin,
// and the flag help enumerates the registry, so a newly registered plugin
// is immediately usable here. Tables are printed through the shared
// internal/results emitters.
//
// Examples:
//
//	htsim -print-config
//	htsim -mix mix-1 -threads 64 -infection 0.5
//	htsim -mix mix-4 -threads 64 -hts 16 -placement center -allocator greedy
//	htsim -topology torus -size 64 -hts 8 -placement ring -stream
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/pkg/htsim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		obs.Stderr().Error("htsim: fatal", "error", err)
		os.Exit(1)
	}
}

// choices renders a registry's names for flag help text.
func choices(names []string) string { return strings.Join(names, ", ") }

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("htsim", flag.ContinueOnError)
	var (
		printConfig = fs.Bool("print-config", false, "print the Table I configuration and exit")
		size        = fs.Int("size", 256, "system size (number of cores)")
		topology    = fs.String("topology", "mesh", "network topology: "+choices(htsim.Topologies()))
		mixName     = fs.String("mix", "mix-1", "benchmark mix: "+choices(htsim.Mixes()))
		threads     = fs.Int("threads", 64, "threads per application")
		htCount     = fs.Int("hts", 16, "number of hardware Trojans")
		placement   = fs.String("placement", "random", "HT placement: "+choices(htsim.Placements()))
		infection   = fs.Float64("infection", -1, "target infection rate (overrides -placement when ≥ 0)")
		allocName   = fs.String("allocator", "fair", "budget allocator: "+choices(htsim.Allocators()))
		defName     = fs.String("defense", "none", "manager-side defense: "+choices(htsim.Defenses()))
		strategy    = fs.String("strategy", "scale", "Trojan payload strategy: "+choices(htsim.TrojanStrategies()))
		mode        = fs.String("mode", "false-data", "attack class: "+choices(htsim.AttackModes()))
		gmPos       = fs.String("gm", "center", "global manager position: center or corner")
		routing     = fs.String("routing", "", "routing algorithm (default by topology): "+choices(htsim.Routings()))
		epochs      = fs.Int("epochs", 10, "budgeting epochs")
		epochCycles = fs.Uint64("epoch-cycles", 1000, "cycles per epoch")
		memTraffic  = fs.Bool("mem", false, "enable cache-hierarchy background traffic")
		dualPath    = fs.Bool("dualpath", false, "enable the dual-path request-verification defense")
		trace       = fs.Bool("trace", false, "print the per-epoch trace")
		stream      = fs.Bool("stream", false, "stream per-epoch samples live while the campaign runs")
		seed        = fs.Int64("seed", 1, "random seed")
		parallel    = fs.Int("parallel", 0, "campaign workers (0 = one per CPU; 1 = sequential; results identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []htsim.Option{
		htsim.WithCores(*size),
		htsim.WithTopology(*topology),
		htsim.WithEpochs(*epochs),
		htsim.WithEpochCycles(*epochCycles),
		htsim.WithMemTraffic(*memTraffic),
		htsim.WithDualPath(*dualPath),
		htsim.WithSeed(*seed),
		htsim.WithWorkers(*parallel),
		htsim.WithAllocator(*allocName),
		htsim.WithDefense(*defName),
		htsim.WithGMPlacement(*gmPos),
	}
	if *routing != "" {
		opts = append(opts, htsim.WithRouting(*routing))
	}
	if *stream {
		opts = append(opts, htsim.WithObserver(&streamPrinter{}))
	}

	if *printConfig {
		cfg, err := htsim.BuildConfig(opts...)
		if err != nil {
			return err
		}
		t, err := core.ConfigTableFor(cfg)
		if err != nil {
			return err
		}
		return results.WriteText(os.Stdout, t)
	}

	sim, err := htsim.New(opts...)
	if err != nil {
		return err
	}
	sc, err := htsim.MixScenario(*mixName, *threads)
	if err != nil {
		return err
	}
	if sc.Strategy, err = htsim.Strategy(*strategy); err != nil {
		return err
	}
	if sc.Mode, err = htsim.AttackMode(*mode); err != nil {
		return err
	}

	switch {
	case *infection >= 0:
		p, achieved := sim.TrojansForInfection(*infection)
		fmt.Printf("placement for target infection %.2f: %d HTs (predicted %.3f)\n", *infection, p.Size(), achieved)
		sc.Trojans = p
	case *htCount > 0:
		p, err := sim.Trojans(*placement, *htCount, *seed)
		if err != nil {
			return err
		}
		sc.Trojans = p
	}

	attacked, baseline, err := sim.RunPair(ctx, sc)
	if err != nil {
		return err
	}
	cmp, err := htsim.Compare(attacked, baseline)
	if err != nil {
		return err
	}
	cfg := sim.Config()
	fmt.Printf("chip: %d cores, GM at node %d, budget %.1f W, allocator %s\n",
		cfg.Cores, sim.ManagerNode(), float64(attacked.ChipBudgetMW)/1000, cfg.Allocator.Name())
	if err := results.WriteText(os.Stdout, core.CampaignTableFor(cfg, attacked, cmp)); err != nil {
		return err
	}
	fmt.Printf("attack effect Q = %.3f (infection measured %.3f, predicted %.3f; %d requests tampered)\n",
		cmp.Q, attacked.InfectionMeasured, attacked.InfectionPredicted, attacked.Trojan.Modified)
	fmt.Printf("noc: %d packets delivered, avg POWER_REQ latency %.1f cycles\n",
		attacked.Net.Delivered, attacked.Net.AvgLatency(noc.TypePowerReq))
	if cfg.DualPathRequests {
		fmt.Printf("dual-path voter: %d pairs, %d mismatches, %d unpaired\n",
			attacked.DualPathPairs, attacked.DualPathMismatches, attacked.DualPathUnpaired)
	}
	if *trace {
		if err := results.WriteText(os.Stdout, &traceTable{cfg: cfg, rep: attacked}); err != nil {
			return err
		}
	}
	return nil
}

// streamPrinter prints each epoch sample as it arrives — the CLI face of
// the SDK's streaming Observer.
type streamPrinter struct{}

// ObserveEpoch implements htsim.Observer.
func (*streamPrinter) ObserveEpoch(s htsim.EpochSample) {
	state := "off"
	if s.TrojanActive {
		state = "ON"
	}
	fmt.Printf("epoch %2d  trojan %-3s  recv %3d  tampered %3d  grants %3d  infection %.3f\n",
		s.Epoch, state, s.RequestsReceived, s.RequestsTampered, s.GrantsIssued, s.InfectionRunning)
}

// traceTable renders the per-epoch trace through the shared emitters; it
// implements results.Table locally to show the interface is open to
// one-off views.
type traceTable struct {
	cfg core.Config
	rep *core.Report
}

// TableMeta implements results.Table.
func (t *traceTable) TableMeta() *results.Meta {
	params := struct {
		Cores     int    `json:"cores"`
		Allocator string `json:"allocator"`
		Epochs    int    `json:"epochs"`
		Seed      int64  `json:"seed"`
	}{t.cfg.Cores, t.cfg.Allocator.Name(), t.cfg.Epochs, t.cfg.Seed}
	m := results.NewMeta("run", "Per-epoch campaign trace", t.cfg.Seed, 0, params)
	return &m
}

// ColumnNames implements results.Table.
func (t *traceTable) ColumnNames() []string {
	return []string{"epoch", "active", "received", "tampered", "victim_level", "attacker_level"}
}

// RowValues implements results.Table.
func (t *traceTable) RowValues() [][]any {
	rows := make([][]any, len(t.rep.Epochs))
	for i, rec := range t.rep.Epochs {
		state := "off"
		if rec.TrojanActive {
			state = "ON"
		}
		rows[i] = []any{rec.Epoch, state, rec.RequestsReceived, rec.RequestsTampered,
			rec.VictimMeanLevel, rec.AttackerMeanLevel}
	}
	return rows
}
