// Command htsim runs a single hardware-Trojan power-budgeting campaign and
// prints the full report: per-application θ/Θ/Φ, infection rates, the
// attack effect Q, and NoC statistics. Tables are printed through the
// shared internal/results emitters.
//
// Examples:
//
//	htsim -print-config
//	htsim -mix mix-1 -threads 64 -infection 0.5
//	htsim -mix mix-4 -threads 64 -hts 16 -placement center -allocator greedy
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/attack"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/results"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "htsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("htsim", flag.ContinueOnError)
	var (
		printConfig = fs.Bool("print-config", false, "print the Table I configuration and exit")
		size        = fs.Int("size", 256, "system size (number of cores)")
		mixName     = fs.String("mix", "mix-1", "Table III benchmark mix")
		threads     = fs.Int("threads", 64, "threads per application")
		htCount     = fs.Int("hts", 16, "number of hardware Trojans")
		placement   = fs.String("placement", "random", "HT placement: center, corner, random, ring")
		infection   = fs.Float64("infection", -1, "target infection rate (overrides -placement when ≥ 0)")
		allocName   = fs.String("allocator", "fair", "budget allocator: fair, greedy, dp, pi")
		gmPos       = fs.String("gm", "center", "global manager position: center or corner")
		routing     = fs.String("routing", "xy", "routing algorithm: xy or west-first")
		epochs      = fs.Int("epochs", 10, "budgeting epochs")
		epochCycles = fs.Uint64("epoch-cycles", 1000, "cycles per epoch")
		memTraffic  = fs.Bool("mem", false, "enable cache-hierarchy background traffic")
		dualPath    = fs.Bool("dualpath", false, "enable the dual-path request-verification defense")
		trace       = fs.Bool("trace", false, "print the per-epoch trace")
		seed        = fs.Int64("seed", 1, "random seed")
		parallel    = fs.Int("parallel", 0, "campaign workers (0 = one per CPU; 1 = sequential; results identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Cores = *size
	cfg.Epochs = *epochs
	cfg.EpochCycles = *epochCycles
	cfg.MemTraffic = *memTraffic
	cfg.DualPathRequests = *dualPath
	cfg.Seed = *seed
	cfg.Workers = *parallel
	alloc, err := budget.ByName(*allocName)
	if err != nil {
		return err
	}
	cfg.Allocator = alloc
	if *gmPos == "corner" {
		cfg.GM = core.GMCorner
	}
	r, err := noc.RoutingByName(*routing)
	if err != nil {
		return err
	}
	cfg.NoC.Routing = r

	if *printConfig {
		t, err := core.ConfigTableFor(cfg)
		if err != nil {
			return err
		}
		return results.WriteText(os.Stdout, t)
	}

	mix, err := workload.MixByName(*mixName)
	if err != nil {
		return err
	}
	sc, err := core.MixScenario(mix, *threads)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	mesh := sys.Mesh()
	gm := sys.ManagerNode()

	switch {
	case *infection >= 0:
		p, achieved := attack.ForInfectionRate(mesh, gm, *infection, mesh.Nodes()/4)
		fmt.Printf("placement for target infection %.2f: %d HTs (predicted %.3f)\n", *infection, p.Size(), achieved)
		sc.Trojans = p
	case *htCount > 0:
		var p attack.Placement
		switch *placement {
		case "center":
			p, err = attack.CenterCluster(mesh, *htCount, rand.New(rand.NewSource(*seed)), gm)
		case "corner":
			p, err = attack.CornerCluster(mesh, *htCount, rand.New(rand.NewSource(*seed)), gm)
		case "ring":
			p, err = attack.RingCluster(mesh, mesh.Coord(gm), *htCount, 2, gm)
		case "random":
			p, err = attack.RandomPlacement(mesh, *htCount, rand.New(rand.NewSource(*seed)), gm)
		default:
			return fmt.Errorf("unknown placement %q", *placement)
		}
		if err != nil {
			return err
		}
		sc.Trojans = p
	}

	attacked, baseline, err := sys.RunPair(sc)
	if err != nil {
		return err
	}
	cmp, err := core.Compare(attacked, baseline)
	if err != nil {
		return err
	}
	fmt.Printf("chip: %d cores, GM at node %d, budget %.1f W, allocator %s\n",
		cfg.Cores, sys.ManagerNode(), float64(attacked.ChipBudgetMW)/1000, cfg.Allocator.Name())
	if err := results.WriteText(os.Stdout, core.CampaignTableFor(cfg, attacked, cmp)); err != nil {
		return err
	}
	fmt.Printf("attack effect Q = %.3f (infection measured %.3f, predicted %.3f; %d requests tampered)\n",
		cmp.Q, attacked.InfectionMeasured, attacked.InfectionPredicted, attacked.Trojan.Modified)
	fmt.Printf("noc: %d packets delivered, avg POWER_REQ latency %.1f cycles\n",
		attacked.Net.Delivered, attacked.Net.AvgLatency(noc.TypePowerReq))
	if *dualPath {
		fmt.Printf("dual-path voter: %d pairs, %d mismatches, %d unpaired\n",
			attacked.DualPathPairs, attacked.DualPathMismatches, attacked.DualPathUnpaired)
	}
	if *trace {
		if err := results.WriteText(os.Stdout, &traceTable{cfg: cfg, rep: attacked}); err != nil {
			return err
		}
	}
	return nil
}

// traceTable renders the per-epoch trace through the shared emitters; it
// implements results.Table locally to show the interface is open to
// one-off views.
type traceTable struct {
	cfg core.Config
	rep *core.Report
}

// TableMeta implements results.Table.
func (t *traceTable) TableMeta() *results.Meta {
	params := struct {
		Cores     int    `json:"cores"`
		Allocator string `json:"allocator"`
		Epochs    int    `json:"epochs"`
		Seed      int64  `json:"seed"`
	}{t.cfg.Cores, t.cfg.Allocator.Name(), t.cfg.Epochs, t.cfg.Seed}
	m := results.NewMeta("run", "Per-epoch campaign trace", t.cfg.Seed, 0, params)
	return &m
}

// ColumnNames implements results.Table.
func (t *traceTable) ColumnNames() []string {
	return []string{"epoch", "active", "received", "tampered", "victim_level", "attacker_level"}
}

// RowValues implements results.Table.
func (t *traceTable) RowValues() [][]any {
	rows := make([][]any, len(t.rep.Epochs))
	for i, rec := range t.rep.Epochs {
		state := "off"
		if rec.TrojanActive {
			state = "ON"
		}
		rows[i] = []any{rec.Epoch, state, rec.RequestsReceived, rec.RequestsTampered,
			rec.VictimMeanLevel, rec.AttackerMeanLevel}
	}
	return rows
}
