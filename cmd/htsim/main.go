// Command htsim runs a single hardware-Trojan power-budgeting campaign and
// prints the full report: per-application θ/Θ/Φ, infection rates, the
// attack effect Q, and NoC statistics.
//
// Examples:
//
//	htsim -print-config
//	htsim -mix mix-1 -threads 64 -infection 0.5
//	htsim -mix mix-4 -threads 64 -hts 16 -placement center -allocator greedy
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/attack"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "htsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("htsim", flag.ContinueOnError)
	var (
		printConfig = fs.Bool("print-config", false, "print the Table I configuration and exit")
		size        = fs.Int("size", 256, "system size (number of cores)")
		mixName     = fs.String("mix", "mix-1", "Table III benchmark mix")
		threads     = fs.Int("threads", 64, "threads per application")
		htCount     = fs.Int("hts", 16, "number of hardware Trojans")
		placement   = fs.String("placement", "random", "HT placement: center, corner, random, ring")
		infection   = fs.Float64("infection", -1, "target infection rate (overrides -placement when ≥ 0)")
		allocName   = fs.String("allocator", "fair", "budget allocator: fair, greedy, dp, pi")
		gmPos       = fs.String("gm", "center", "global manager position: center or corner")
		routing     = fs.String("routing", "xy", "routing algorithm: xy or west-first")
		epochs      = fs.Int("epochs", 10, "budgeting epochs")
		epochCycles = fs.Uint64("epoch-cycles", 1000, "cycles per epoch")
		memTraffic  = fs.Bool("mem", false, "enable cache-hierarchy background traffic")
		dualPath    = fs.Bool("dualpath", false, "enable the dual-path request-verification defense")
		trace       = fs.Bool("trace", false, "print the per-epoch trace")
		seed        = fs.Int64("seed", 1, "random seed")
		parallel    = fs.Int("parallel", 0, "campaign workers (0 = one per CPU; 1 = sequential; results identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Cores = *size
	cfg.Epochs = *epochs
	cfg.EpochCycles = *epochCycles
	cfg.MemTraffic = *memTraffic
	cfg.DualPathRequests = *dualPath
	cfg.Seed = *seed
	cfg.Workers = *parallel
	alloc, err := budget.ByName(*allocName)
	if err != nil {
		return err
	}
	cfg.Allocator = alloc
	if *gmPos == "corner" {
		cfg.GM = core.GMCorner
	}
	r, err := noc.RoutingByName(*routing)
	if err != nil {
		return err
	}
	cfg.NoC.Routing = r

	if *printConfig {
		printTableI(cfg)
		return nil
	}

	mix, err := workload.MixByName(*mixName)
	if err != nil {
		return err
	}
	sc, err := core.MixScenario(mix, *threads)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	mesh := sys.Mesh()
	gm := sys.ManagerNode()

	switch {
	case *infection >= 0:
		p, achieved := attack.ForInfectionRate(mesh, gm, *infection, mesh.Nodes()/4)
		fmt.Printf("placement for target infection %.2f: %d HTs (predicted %.3f)\n", *infection, p.Size(), achieved)
		sc.Trojans = p
	case *htCount > 0:
		var p attack.Placement
		switch *placement {
		case "center":
			p, err = attack.CenterCluster(mesh, *htCount, rand.New(rand.NewSource(*seed)), gm)
		case "corner":
			p, err = attack.CornerCluster(mesh, *htCount, rand.New(rand.NewSource(*seed)), gm)
		case "ring":
			p, err = attack.RingCluster(mesh, mesh.Coord(gm), *htCount, 2, gm)
		case "random":
			p, err = attack.RandomPlacement(mesh, *htCount, rand.New(rand.NewSource(*seed)), gm)
		default:
			return fmt.Errorf("unknown placement %q", *placement)
		}
		if err != nil {
			return err
		}
		sc.Trojans = p
	}

	attacked, baseline, err := sys.RunPair(sc)
	if err != nil {
		return err
	}
	cmp, err := core.Compare(attacked, baseline)
	if err != nil {
		return err
	}
	printReport(cfg, sys, attacked, cmp)
	if *dualPath {
		fmt.Printf("dual-path voter: %d pairs, %d mismatches, %d unpaired\n",
			attacked.DualPathPairs, attacked.DualPathMismatches, attacked.DualPathUnpaired)
	}
	if *trace {
		printTrace(attacked)
	}
	return nil
}

func printTrace(rep *core.Report) {
	fmt.Printf("%7s %8s %10s %10s %13s %13s\n",
		"epoch", "active", "received", "tampered", "victim-level", "attacker-lvl")
	for _, rec := range rep.Epochs {
		state := "off"
		if rec.TrojanActive {
			state = "ON"
		}
		fmt.Printf("%7d %8s %10d %10d %13.2f %13.2f\n",
			rec.Epoch, state, rec.RequestsReceived, rec.RequestsTampered,
			rec.VictimMeanLevel, rec.AttackerMeanLevel)
	}
}

func printTableI(cfg core.Config) {
	mesh, _ := cfg.Mesh()
	fmt.Println("Configuration (Table I)")
	fmt.Printf("  Number of processors      %d\n", cfg.Cores)
	fmt.Printf("  Mesh                      %dx%d 2D mesh\n", mesh.Width, mesh.Height)
	fmt.Printf("  NoC VCs / buffer          %d VCs x %d flits\n", cfg.NoC.VCs, cfg.NoC.BufDepth)
	fmt.Printf("  NoC latency               router %d cycles, link %d cycle\n", cfg.NoC.RouterCycles, cfg.NoC.LinkCycles)
	fmt.Printf("  Routing algorithm         %s\n", cfg.NoC.Routing.Name())
	fmt.Printf("  L1 D cache (private)      16 KB, 2-way, 32 B lines\n")
	fmt.Printf("  L2 cache (shared)         64 KB slice/node, %d-cycle, MESI\n", cfg.Mem.L2Latency)
	fmt.Printf("  Main memory latency       %d cycles\n", cfg.Mem.MemLatency)
	fmt.Printf("  DVFS levels               %d (%.1f-%.1f GHz)\n",
		cfg.Power.NumLevels(), cfg.Power.Freq(0), cfg.Power.Freq(cfg.Power.NumLevels()-1))
	fmt.Printf("  Chip budget               %.1f W (%.0f%% of peak)\n",
		float64(cfg.ChipBudgetMW())/1000, cfg.BudgetFraction*100)
	fmt.Printf("  Allocator                 %s\n", cfg.Allocator.Name())
}

func printReport(cfg core.Config, sys *core.System, attacked *core.Report, cmp *core.Comparison) {
	fmt.Printf("chip: %d cores, GM at node %d, budget %.1f W, allocator %s\n",
		cfg.Cores, sys.ManagerNode(), float64(attacked.ChipBudgetMW)/1000, cfg.Allocator.Name())
	fmt.Printf("infection: measured %.3f, predicted %.3f (trojans modified %d requests)\n",
		attacked.InfectionMeasured, attacked.InfectionPredicted, attacked.Trojan.Modified)
	fmt.Printf("%-16s %-9s %7s %9s %9s %7s\n", "app", "role", "cores", "theta", "baseline", "change")
	for _, app := range cmp.PerApp {
		fmt.Printf("%-16s %-9s %7d %9.3f %9.3f %6.2fx\n",
			app.Name, app.Role, appCores(attacked, app.Name), app.ThetaAttacked, app.ThetaBaseline, app.Change)
	}
	fmt.Printf("attack effect Q = %.3f\n", cmp.Q)
	fmt.Printf("noc: %d packets delivered, avg POWER_REQ latency %.1f cycles\n",
		attacked.Net.Delivered, attacked.Net.AvgLatency(noc.TypePowerReq))
}

func appCores(rep *core.Report, name string) int {
	for _, a := range rep.Apps {
		if a.Name == name {
			return a.Cores
		}
	}
	return 0
}
