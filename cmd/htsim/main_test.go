package main

import (
	"context"
	"testing"
)

func TestRunPrintConfig(t *testing.T) {
	if err := run(context.Background(), []string{"-print-config"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSmallCampaign(t *testing.T) {
	err := run(context.Background(), []string{"-size", "64", "-threads", "15", "-hts", "6", "-placement", "ring", "-epochs", "6"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunInfectionTarget(t *testing.T) {
	err := run(context.Background(), []string{"-size", "64", "-threads", "15", "-infection", "0.5", "-epochs", "6"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := [][]string{
		{"-allocator", "magic"},
		{"-routing", "zigzag"},
		{"-mix", "mix-8"},
		{"-size", "64", "-placement", "diagonal"},
	}
	for _, args := range tests {
		if err := run(context.Background(), args); err == nil {
			t.Fatalf("args %v must fail", args)
		}
	}
}

func TestRunDualPathTrace(t *testing.T) {
	err := run(context.Background(), []string{"-size", "64", "-threads", "15", "-hts", "4", "-placement", "ring",
		"-epochs", "5", "-dualpath", "-trace"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
