// Quickstart: build the Table I chip, implant 12 hardware Trojans near the
// global manager, run one attack campaign against mix-1, and print the
// paper's headline measurements (infection rate, per-app Θ, attack effect
// Q).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// The Table I chip, shrunk to 64 cores so the example runs in seconds.
	cfg := core.DefaultConfig()
	cfg.Cores = 64
	cfg.MemTraffic = false // budget-protocol-only: plenty for a first look

	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The Table III mix-1 workload: barnes+canneal attack
	// blackscholes+raytrace, 8 threads each.
	mix, err := workload.MixByName("mix-1")
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := core.MixScenario(mix, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Implant 12 Trojans in a ring around the global manager — the
	// highest-impact region (Section IV-B).
	mesh := sys.Mesh()
	gm := sys.ManagerNode()
	placement, err := attack.RingCluster(mesh, mesh.Coord(gm), 12, 2, gm)
	if err != nil {
		log.Fatal(err)
	}
	scenario.Trojans = placement

	// Run the campaign and its clean baseline.
	attacked, baseline, err := sys.RunPair(scenario)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := core.Compare(attacked, baseline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("global manager at node %d, %d Trojans implanted\n", gm, placement.Size())
	fmt.Printf("infection rate: %.2f (predicted %.2f)\n",
		attacked.InfectionMeasured, attacked.InfectionPredicted)
	for _, app := range cmp.PerApp {
		fmt.Printf("  %-14s %-9s Θ = %.2f\n", app.Name, app.Role, app.Change)
	}
	fmt.Printf("attack effect Q = %.2f  (> 1 means the attack worked)\n", cmp.Q)
}
