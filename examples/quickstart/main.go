// Quickstart: assemble the Table I chip with the pkg/htsim SDK, implant
// 12 hardware Trojans near the global manager, run one attack campaign
// against mix-1, and print the paper's headline measurements (infection
// rate, per-app Θ, attack effect Q).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/htsim"
)

func main() {
	// The Table I chip, shrunk to 64 cores so the example runs in seconds.
	// Every axis is a named option; htsim.Axes() lists the alternatives.
	sim, err := htsim.New(
		htsim.WithCores(64),
		htsim.WithMemTraffic(false), // budget-protocol-only: plenty for a first look
	)
	if err != nil {
		log.Fatal(err)
	}

	// The Table III mix-1 workload: barnes+canneal attack
	// blackscholes+raytrace, 8 threads each.
	scenario, err := htsim.MixScenario("mix-1", 8)
	if err != nil {
		log.Fatal(err)
	}

	// Implant 12 Trojans in a ring around the global manager — the
	// highest-impact region (Section IV-B).
	placement, err := sim.Trojans("ring", 12, 1)
	if err != nil {
		log.Fatal(err)
	}
	scenario.Trojans = placement

	// Run the campaign and its clean baseline.
	attacked, baseline, err := sim.RunPair(context.Background(), scenario)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := htsim.Compare(attacked, baseline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("global manager at node %d, %d Trojans implanted\n", sim.ManagerNode(), placement.Size())
	fmt.Printf("infection rate: %.2f (predicted %.2f)\n",
		attacked.InfectionMeasured, attacked.InfectionPredicted)
	for _, app := range cmp.PerApp {
		fmt.Printf("  %-14s %-9s Θ = %.2f\n", app.Name, app.Role, app.Change)
	}
	fmt.Printf("attack effect Q = %.2f  (> 1 means the attack worked)\n", cmp.Q)
}
