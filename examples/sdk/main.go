// SDK tour: the pkg/htsim plugin registries, functional options, and
// streaming observers in one program. The example discovers every plugin
// axis, builds a wraparound-torus chip with a PI-controller allocator and
// a history-guard defense — a scenario the paper never ran, assembled
// purely from registered names — and watches the attack unfold live
// through a streaming per-epoch observer with a cancellable context.
//
// Run with:
//
//	go run ./examples/sdk
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/pkg/htsim"
)

// ticker streams per-epoch samples as they arrive: the hook a live
// dashboard or long-running service uses instead of waiting for the
// final report.
type ticker struct{}

// ObserveEpoch implements htsim.Observer.
func (ticker) ObserveEpoch(s htsim.EpochSample) {
	bar := ""
	for i := 0.0; i < s.InfectionRunning*20; i++ {
		bar += "#"
	}
	fmt.Printf("  epoch %2d  received %3d  tampered %3d  grants %3d  infection %.3f %s\n",
		s.Epoch, s.RequestsReceived, s.RequestsTampered, s.GrantsIssued, s.InfectionRunning, bar)
}

func main() {
	// 1. Discovery: every axis of the simulator is a named registry.
	fmt.Println("plugin axes:")
	for _, axis := range htsim.Axes() {
		fmt.Printf("  %-16s %v\n", axis.Name, axis.Plugins)
	}

	// 2. Composition: a torus chip the paper never evaluated, assembled
	// from registered names. The torus auto-selects its deadlock-free
	// dateline routing ("torus-xy").
	sim, err := htsim.New(
		htsim.WithCores(64),
		htsim.WithTopology("torus"),
		htsim.WithAllocator("pi"),
		htsim.WithDefense("history-guard"),
		htsim.WithMemTraffic(false),
		htsim.WithEpochs(10),
		htsim.WithObserver(ticker{}),
	)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.Config()
	fmt.Printf("\nchip: %d cores on a %s (%dx%d), %s routing, %s allocator\n",
		cfg.Cores, cfg.Topology, sim.Mesh().Width, sim.Mesh().Height,
		cfg.NoC.Routing.Name(), cfg.Allocator.Name())

	// 3. Scenario: mix-2 under a duty-cycled zero-rewrite attack from a
	// random fleet — again, every choice a registered name.
	scenario, err := htsim.MixScenario("mix-2", 8)
	if err != nil {
		log.Fatal(err)
	}
	if scenario.Strategy, err = htsim.Strategy("zero"); err != nil {
		log.Fatal(err)
	}
	scenario.Trojans, err = sim.Trojans("random", 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	scenario.ActivateAfterEpochs = 2
	scenario.DutyOnEpochs, scenario.DutyOffEpochs = 2, 2

	// 4. Run with a deadline: cancelling the context — timeout, signal,
	// or an observer pulling the plug — stops the simulation promptly.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fmt.Println("\nstreaming the attacked run:")
	attacked, baseline, err := sim.RunPair(ctx, scenario)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := htsim.Compare(attacked, baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal report: infection %.3f, attack effect Q = %.3f, %d requests flagged by the defense\n",
		attacked.InfectionMeasured, cmp.Q, attacked.FlaggedRequests)
	fmt.Println("the torus's wraparound links shorten request paths, so the same fleet")
	fmt.Println("intercepts a different traffic cross-section than on the paper's mesh.")
}
