// Stealthy DoS: the Section III-B attack process end to end, on the
// pkg/htsim SDK. The hacker broadcasts CONFIG_CMD packets to duty-cycle
// the Trojans' activation signal ON and OFF across budgeting epochs — the
// paper's suggestion for evading detection — and the example shows how
// the victim's performance and the infection rate respond to different
// duty cycles. The payload rewrite is a custom trojan.Strategy value:
// plugins resolve by name, but hand-built instances drop in wherever a
// registered one would.
//
// Run with:
//
//	go run ./examples/stealthy_dos
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/trojan"
	"repro/pkg/htsim"
)

func main() {
	sim, err := htsim.New(
		htsim.WithCores(64),
		htsim.WithMemTraffic(false),
		htsim.WithEpochs(12),
		htsim.WithWarmupEpochs(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	placement, err := sim.Trojans("ring", 8, 1)
	if err != nil {
		log.Fatal(err)
	}

	scenario := htsim.Scenario{
		Apps: []htsim.AppSpec{
			{Name: "swaptions", Threads: 16, Role: htsim.RoleAttacker},
			{Name: "blackscholes", Threads: 16, Role: htsim.RoleVictim},
		},
		Trojans:  placement,
		Strategy: trojan.ScaleStrategy{VictimFactor: 0.2, BoostFactor: 1.5},
	}

	ctx := context.Background()
	baseline, err := sim.Run(ctx, scenario.WithoutTrojans())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("duty cycle (ON/OFF epochs) vs infection rate and victim performance")
	fmt.Printf("%10s %12s %12s %10s\n", "duty", "infection", "victim Θ", "Q")
	duties := []struct{ on, off int }{
		{0, 0}, // always on
		{3, 1},
		{1, 1},
		{1, 3},
	}
	var traced *htsim.Report
	for _, d := range duties {
		sc := scenario
		sc.DutyOnEpochs, sc.DutyOffEpochs = d.on, d.off
		attacked, err := sim.Run(ctx, sc)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := htsim.Compare(attacked, baseline)
		if err != nil {
			log.Fatal(err)
		}
		victim := 0.0
		for _, app := range cmp.PerApp {
			if app.Role == htsim.RoleVictim {
				victim = app.Change
			}
		}
		label := "always-on"
		if d.on > 0 {
			label = fmt.Sprintf("%d/%d", d.on, d.off)
		}
		if d.on == 1 && d.off == 1 {
			traced = attacked
		}
		fmt.Printf("%10s %12.3f %12.3f %10.3f\n", label, attacked.InfectionMeasured, victim, cmp.Q)
	}

	// The per-epoch trace of the 1/1 campaign shows the ON/OFF signature a
	// history-based detector would look for.
	fmt.Println("\nepoch trace of the 1/1 duty cycle:")
	fmt.Printf("%7s %8s %10s %13s %13s\n", "epoch", "active", "tampered", "victim-level", "attacker-lvl")
	for _, rec := range traced.Epochs {
		state := "off"
		if rec.TrojanActive {
			state = "ON"
		}
		fmt.Printf("%7d %8s %10d %13.2f %13.2f\n",
			rec.Epoch, state, rec.RequestsTampered, rec.VictimMeanLevel, rec.AttackerMeanLevel)
	}
	fmt.Println("\nshorter ON phases trade attack strength for stealth — the Trojan")
	fmt.Println("only rewrites packets while the activation register is set.")
}
