// Placement optimisation: the attacker-side workflow of Section IV-C and
// Eqns 9–11, driven through the pkg/htsim SDK. The example samples random
// Trojan fleets, measures the attack effect Q of each by simulation, fits
// the linear model
//
//	Q ≈ a1·ρ + a2·η + a3·m + Σ bj·Φγj + Σ ck·Φδk + a0,
//
// then enumerates candidate placements exhaustively (the paper's own
// solving strategy) and verifies the winner by simulation.
//
// Run with:
//
//	go run ./examples/placement_opt
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/pkg/htsim"
)

func main() {
	sim, err := htsim.New(htsim.WithCores(64), htsim.WithMemTraffic(false))
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := htsim.MixScenario("mix-2", 8)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	baseline, err := sim.Run(ctx, scenario.WithoutTrojans())
	if err != nil {
		log.Fatal(err)
	}

	// 1. Training: simulate random fleets of varying size so the model can
	// identify the a3·m coefficient.
	const maxFleet = 10
	rng := rand.New(rand.NewSource(5))
	var samples []attack.Sample
	fmt.Println("training campaigns (random placements):")
	for i := 0; i < 12; i++ {
		placement, err := attack.RandomPlacement(sim.Mesh(), 2+(i%maxFleet), rng, sim.ManagerNode())
		if err != nil {
			log.Fatal(err)
		}
		scenario.Trojans = placement
		attacked, err := sim.Run(ctx, scenario)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := htsim.Compare(attacked, baseline)
		if err != nil {
			log.Fatal(err)
		}
		f := cmp.Features
		fmt.Printf("  ρ=%5.2f η=%5.2f m=%2d → Q=%.3f\n", f.Rho, f.Eta, f.M, cmp.Q)
		samples = append(samples, attack.Sample{Features: f, Q: cmp.Q})
	}

	// 2. Fit Eqn 9.
	model, err := attack.FitEffectModel(samples)
	if err != nil {
		log.Fatal(err)
	}
	a1, a2, a3, _, _, a0 := model.Coefficients()
	fmt.Printf("\nEqn 9 fit: Q ≈ %.3f·ρ + %.3f·η + %.3f·m + %.3f   (R²=%.2f)\n",
		a1, a2, a3, a0, model.R2())

	// 3. Solve Eqn 10 by exhaustive enumeration.
	last := samples[len(samples)-1].Features
	best, evaluated, err := attack.OptimizePlacement(sim.Mesh(), sim.ManagerNode(), model, attack.OptimizeOptions{
		MaxHTs:      maxFleet,
		VictimPhi:   last.VictimPhi,
		AttackerPhi: last.AttackerPhi,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enumerated %d placements; best predicted Q = %.3f at ρ=%.2f η=%.2f m=%d\n",
		evaluated, best.PredictedQ, best.Features.Rho, best.Features.Eta, best.Features.M)

	// 4. Verify the optimised placement by simulation.
	scenario.Trojans = best.Placement
	attacked, err := sim.Run(ctx, scenario)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := htsim.Compare(attacked, baseline)
	if err != nil {
		log.Fatal(err)
	}
	mean := 0.0
	for _, s := range samples {
		mean += s.Q / float64(len(samples))
	}
	fmt.Printf("\nsimulated Q of optimised placement: %.3f (random mean was %.3f, %+.0f%%)\n",
		cmp.Q, mean, (cmp.Q-mean)/mean*100)
}
