// Defense study: the same SDK the attacker uses also quantifies
// countermeasures. This example evaluates two architectural knobs the
// paper's analysis suggests matter — where the global manager sits (Fig 3:
// a corner manager's longer request paths are easier to intercept than a
// central one's) and which routing algorithm forwards the requests
// (deterministic XY paths are predictable for the attacker; adaptive
// west-first routing perturbs paths when the network is loaded). Both
// knobs are pkg/htsim options resolving registered plugin names.
//
// Infection rates are averaged over several independent random fleets so
// the comparison reflects the architecture, not one lucky placement.
//
// Run with:
//
//	go run ./examples/defense_study
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/pkg/htsim"
)

const (
	fleets    = 6
	fleetSize = 10
)

func main() {
	fmt.Println("defense study: mean infection rate and Q over", fleets, "random Trojan fleets")
	fmt.Printf("%10s %12s %12s %10s\n", "manager", "routing", "infection", "Q")

	for _, gm := range []string{"corner", "center"} {
		for _, routing := range []string{"xy", "west-first"} {
			infection, q, err := evaluate(gm, routing)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10s %12s %12.3f %10.3f\n", gm, routing, infection, q)
		}
	}
	fmt.Println("\na centrally placed manager shortens request paths and lowers the")
	fmt.Println("interception probability. under light control-plane load adaptive")
	fmt.Println("west-first routing follows the same minimal paths as XY — route")
	fmt.Println("randomisation only pays off once the network is congested.")
}

func evaluate(gm, routing string) (infection, q float64, err error) {
	sim, err := htsim.New(
		htsim.WithCores(64),
		htsim.WithMemTraffic(true), // background traffic creates the congestion
		// that lets adaptive routing diverge from XY
		htsim.WithEpochs(6),
		htsim.WithWarmupEpochs(1),
		htsim.WithEpochCycles(500),
		htsim.WithGMPlacement(gm),
		htsim.WithRouting(routing),
	)
	if err != nil {
		return 0, 0, err
	}
	scenario := htsim.Scenario{
		Apps: []htsim.AppSpec{
			{Name: "freqmine", Threads: 16, Role: htsim.RoleAttacker},
			{Name: "vips", Threads: 16, Role: htsim.RoleVictim},
			{Name: "dedup", Threads: 16, Role: htsim.RoleVictim},
		},
	}
	ctx := context.Background()
	baseline, err := sim.Run(ctx, scenario.WithoutTrojans())
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < fleets; i++ {
		// The defender moves the manager; the attacker's implants are
		// random and never sit in either candidate manager router.
		placement, err := attack.RandomPlacement(sim.Mesh(), fleetSize, rng,
			sim.Mesh().Center(), sim.Mesh().Corner())
		if err != nil {
			return 0, 0, err
		}
		scenario.Trojans = placement
		attacked, err := sim.Run(ctx, scenario)
		if err != nil {
			return 0, 0, err
		}
		cmp, err := htsim.Compare(attacked, baseline)
		if err != nil {
			return 0, 0, err
		}
		infection += attacked.InfectionMeasured / fleets
		q += cmp.Q / fleets
	}
	return infection, q, nil
}
