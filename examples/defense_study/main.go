// Defense study: the same API the attacker uses also quantifies
// countermeasures. This example evaluates two architectural knobs the
// paper's analysis suggests matter — where the global manager sits (Fig 3:
// a corner manager's longer request paths are easier to intercept than a
// central one's) and which routing algorithm forwards the requests
// (deterministic XY paths are predictable for the attacker; adaptive
// west-first routing perturbs paths when the network is loaded).
//
// Infection rates are averaged over several independent random fleets so
// the comparison reflects the architecture, not one lucky placement.
//
// Run with:
//
//	go run ./examples/defense_study
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/noc"
)

const (
	fleets    = 6
	fleetSize = 10
)

func main() {
	fmt.Println("defense study: mean infection rate and Q over", fleets, "random Trojan fleets")
	fmt.Printf("%10s %12s %12s %10s\n", "manager", "routing", "infection", "Q")

	for _, gm := range []core.GMPlacement{core.GMCorner, core.GMCenter} {
		for _, routing := range []string{"xy", "west-first"} {
			infection, q, err := evaluate(gm, routing)
			if err != nil {
				log.Fatal(err)
			}
			gmName := "corner"
			if gm == core.GMCenter {
				gmName = "center"
			}
			fmt.Printf("%10s %12s %12.3f %10.3f\n", gmName, routing, infection, q)
		}
	}
	fmt.Println("\na centrally placed manager shortens request paths and lowers the")
	fmt.Println("interception probability. under light control-plane load adaptive")
	fmt.Println("west-first routing follows the same minimal paths as XY — route")
	fmt.Println("randomisation only pays off once the network is congested.")
}

func evaluate(gm core.GMPlacement, routing string) (infection, q float64, err error) {
	cfg := core.DefaultConfig()
	cfg.Cores = 64
	cfg.MemTraffic = true // background traffic creates the congestion that
	// lets adaptive routing diverge from XY
	cfg.Epochs = 6
	cfg.WarmupEpochs = 1
	cfg.EpochCycles = 500
	cfg.GM = gm
	r, err := noc.RoutingByName(routing)
	if err != nil {
		return 0, 0, err
	}
	cfg.NoC.Routing = r

	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, 0, err
	}
	scenario := core.Scenario{
		Apps: []core.AppSpec{
			{Name: "freqmine", Threads: 16, Role: core.RoleAttacker},
			{Name: "vips", Threads: 16, Role: core.RoleVictim},
			{Name: "dedup", Threads: 16, Role: core.RoleVictim},
		},
	}
	baseline, err := sys.Run(scenario.WithoutTrojans())
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < fleets; i++ {
		// The defender moves the manager; the attacker's implants are
		// random and never sit in either candidate manager router.
		placement, err := attack.RandomPlacement(sys.Mesh(), fleetSize, rng,
			sys.Mesh().Center(), sys.Mesh().Corner())
		if err != nil {
			return 0, 0, err
		}
		scenario.Trojans = placement
		attacked, err := sys.Run(scenario)
		if err != nil {
			return 0, 0, err
		}
		cmp, err := core.Compare(attacked, baseline)
		if err != nil {
			return 0, 0, err
		}
		infection += attacked.InfectionMeasured / fleets
		q += cmp.Q / fleets
	}
	return infection, q, nil
}
