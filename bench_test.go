// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index).
// Each benchmark runs a scaled-down version of the corresponding
// experiment so the whole suite completes in minutes; the cmd tools run
// the full paper-scale versions. Custom metrics attach the scientifically
// interesting quantity (infection rate, Q, improvement %) to the benchmark
// output so `go test -bench` doubles as a results table.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/attack"
	"repro/internal/budget"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/trojan"
	"repro/internal/workload"
)

// benchConfig is the reduced-scale chip used by campaign benchmarks.
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Cores = 64
	cfg.MemTraffic = false
	cfg.EpochCycles = 500
	cfg.Epochs = 6
	cfg.WarmupEpochs = 1
	return cfg
}

// E1 — Table I: configuration construction and validation.
func BenchmarkTableIConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		if _, err := core.NewSystem(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// E2 — Section III-D: HT area/power accounting.
func BenchmarkAreaPower(b *testing.B) {
	var r trojan.AreaPowerReport
	for i := 0; i < b.N; i++ {
		r = trojan.Report(60, 512)
	}
	b.ReportMetric(r.TotalHTAreaUm2, "um2")
	b.ReportMetric(r.AreaFractionOfAllRouters*100, "area%")
}

// E3 — Fig 3(a): infection rate vs HT count, 64 nodes.
func BenchmarkFig3a(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		pts, err := core.InfectionVsHTCount(64, core.GMCorner, []int{5, 15, 30}, 20, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = pts[len(pts)-1].Rate
	}
	b.ReportMetric(last, "infection@30HT")
}

// E4 — Fig 3(b): infection rate vs HT count, 512 nodes.
func BenchmarkFig3b(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		pts, err := core.InfectionVsHTCount(512, core.GMCorner, []int{10, 30, 60}, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = pts[len(pts)-1].Rate
	}
	b.ReportMetric(last, "infection@60HT")
}

// E5 — Fig 4(a): infection by HT distribution, HTs = size/16.
func BenchmarkFig4a(b *testing.B) {
	benchmarkFig4(b, 16)
}

// E6 — Fig 4(b): infection by HT distribution, HTs = size/8.
func BenchmarkFig4b(b *testing.B) {
	benchmarkFig4(b, 8)
}

func benchmarkFig4(b *testing.B, denominator int) {
	b.Helper()
	sizes := []int{64, 128, 256, 512}
	var center, corner float64
	for i := 0; i < b.N; i++ {
		c, err := core.InfectionByDistribution(core.DistCenter, sizes, denominator, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		k, err := core.InfectionByDistribution(core.DistCorner, sizes, denominator, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		center, corner = c[2].Rate, k[2].Rate // 256-node column
	}
	b.ReportMetric(center, "center@256")
	b.ReportMetric(corner, "corner@256")
}

// E7 — Fig 5: Q vs infection rate, one mix per sub-benchmark.
func BenchmarkFig5(b *testing.B) {
	for _, mix := range workload.Mixes() {
		mix := mix
		b.Run(mix.Name, func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				pts, err := core.QVsInfection(benchConfig(), mix.Name, 16, []float64{0.8})
				if err != nil {
					b.Fatal(err)
				}
				q = pts[0].Q
			}
			b.ReportMetric(q, "Q@0.8")
		})
	}
}

// E8 — Fig 6: per-application performance change at 0.5 infection.
func BenchmarkFig6(b *testing.B) {
	var attackerChange, victimChange float64
	for i := 0; i < b.N; i++ {
		pts, err := core.QVsInfection(benchConfig(), "mix-1", 16, []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		for _, app := range pts[0].PerApp {
			switch app.Role {
			case core.RoleAttacker:
				attackerChange = app.Change
			case core.RoleVictim:
				victimChange = app.Change
			}
		}
	}
	b.ReportMetric(attackerChange, "attackerΘ")
	b.ReportMetric(victimChange, "victimΘ")
}

// E9 — Section V-C: optimal vs random placement.
func BenchmarkOptimalPlacement(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		study, err := core.OptimalVsRandom(benchConfig(), "mix-1", 16, 8, 6, 3)
		if err != nil {
			b.Fatal(err)
		}
		improvement = study.ImprovementPct
	}
	b.ReportMetric(improvement, "improve%")
}

// E10 — allocator ablation: the attack under each budgeting algorithm.
func BenchmarkAllocatorAblation(b *testing.B) {
	for _, alloc := range budget.All() {
		alloc := alloc
		b.Run(alloc.Name(), func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Allocator = alloc
				if alloc.Name() == "dp" {
					cfg.Allocator = budget.NewDPKnapsack(200)
				}
				q = runCampaignQ(b, cfg, nil)
			}
			b.ReportMetric(q, "Q")
		})
	}
}

// Ablation — routing algorithm (DESIGN.md §5.1).
func BenchmarkRoutingAblation(b *testing.B) {
	for _, name := range []string{"xy", "west-first"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				r, err := noc.RoutingByName(name)
				if err != nil {
					b.Fatal(err)
				}
				cfg.NoC.Routing = r
				q = runCampaignQ(b, cfg, nil)
			}
			b.ReportMetric(q, "Q")
		})
	}
}

// Ablation — tamper strategy (DESIGN.md §5.2).
func BenchmarkTamperStrategyAblation(b *testing.B) {
	strategies := []trojan.Strategy{
		trojan.ZeroStrategy{},
		trojan.ScaleStrategy{VictimFactor: 0.25, BoostFactor: 1.5},
		trojan.ScaleStrategy{VictimFactor: 0.5, BoostFactor: 1.0},
	}
	for _, s := range strategies {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				q = runCampaignQ(b, benchConfig(), s)
			}
			b.ReportMetric(q, "Q")
		})
	}
}

// runCampaignQ runs one standard mix-1 campaign with a near-manager fleet
// and returns Q.
func runCampaignQ(b *testing.B, cfg core.Config, strategy trojan.Strategy) float64 {
	b.Helper()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mix, err := workload.MixByName("mix-1")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := core.MixScenario(mix, 16)
	if err != nil {
		b.Fatal(err)
	}
	mesh := sys.Mesh()
	gm := sys.ManagerNode()
	placement, err := attack.RingCluster(mesh, mesh.Coord(gm), 8, 1, gm)
	if err != nil {
		b.Fatal(err)
	}
	sc.Trojans = placement
	sc.Strategy = strategy
	attacked, baseline, err := sys.RunPair(sc)
	if err != nil {
		b.Fatal(err)
	}
	cmp, err := core.Compare(attacked, baseline)
	if err != nil {
		b.Fatal(err)
	}
	return cmp.Q
}

// BenchmarkCampaignPaper times the whole declarative campaign engine on a
// scaled-down version of specs/paper.json (every experiment family at
// smoke scale, artifacts written and discarded) — the end-to-end number
// the simulation service pays per uncached campaign job, recorded in
// BENCH_NOTES.md as the server-era baseline.
func BenchmarkCampaignPaper(b *testing.B) {
	spec := benchPaperSpec()
	for i := 0; i < b.N; i++ {
		if _, _, err := campaign.Run(spec, b.TempDir(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignPaperTraced is BenchmarkCampaignPaper with a live
// span tree rooted over the run — the tracing-overhead guard recorded
// in BENCH_NOTES.md (acceptance: within 5% of the untraced run). Spans
// are job-lifecycle-granular, so the delta should be noise.
func BenchmarkCampaignPaperTraced(b *testing.B) {
	spec := benchPaperSpec()
	for i := 0; i < b.N; i++ {
		ctx, root := obs.StartTrace(context.Background(), "bench")
		if _, _, err := campaign.RunCtx(ctx, spec, b.TempDir(), 0, campaign.Progress{}); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}

// benchPaperSpec is the scaled-down specs/paper.json both campaign
// benchmarks share.
func benchPaperSpec() *campaign.Spec {
	return &campaign.Spec{
		Name: "bench-paper",
		Seed: 1,
		Experiments: []campaign.ExperimentSpec{
			{ID: "E1", Params: campaign.Params{Size: 64}},
			{ID: "E2"},
			{ID: "E3", Params: campaign.Params{Trials: 5}},
			{ID: "E4", Params: campaign.Params{Trials: 5}},
			{ID: "E5", Params: campaign.Params{Sizes: []int{64, 128}, Trials: 5}},
			{ID: "E6", Params: campaign.Params{Sizes: []int{64, 128}, Trials: 5}},
			{ID: "E7", Params: campaign.Params{Size: 64, Mixes: []string{"mix-1"}, Threads: 15, Epochs: 5, Targets: []float64{0, 0.4, 0.8}}},
			{ID: "E8", Params: campaign.Params{Size: 64, Mixes: []string{"mix-1"}, Threads: 15, Epochs: 5, Targets: []float64{0, 0.4, 0.8}}},
			{ID: "E9", Params: campaign.Params{Size: 64, Mixes: []string{"mix-1"}, Threads: 15, Epochs: 5, HTs: 6, Samples: 5}},
			{ID: "E10", Params: campaign.Params{Size: 64, Threads: 15, Epochs: 5}},
			{ID: "X1", Params: campaign.Params{Size: 64, Threads: 15, Epochs: 5}},
			{ID: "X2", Params: campaign.Params{Size: 64, Threads: 15, Epochs: 8}},
		},
	}
}

// Substrate micro-benchmarks: the NoC under the Fig 3 traffic pattern and
// the memory system under a hot-set workload.
func BenchmarkNoCManyToOne(b *testing.B) {
	mesh := noc.Mesh{Width: 16, Height: 16}
	for i := 0; i < b.N; i++ {
		net, err := noc.New(mesh, noc.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		gm := mesh.Center()
		delivered := 0
		net.Attach(gm, func(p *noc.Packet) { delivered++ })
		for id := noc.NodeID(0); id < noc.NodeID(mesh.Nodes()); id++ {
			if id == gm {
				continue
			}
			if err := net.Inject(&noc.Packet{Src: id, Dst: gm, Type: noc.TypePowerReq}); err != nil {
				b.Fatal(err)
			}
		}
		if _, ok := net.RunUntilIdle(1_000_000); !ok {
			b.Fatal("network did not drain")
		}
	}
}

func BenchmarkDPAllocator(b *testing.B) {
	reqs := make([]budget.Request, 64)
	for i := range reqs {
		reqs[i] = budget.Request{
			Core:        i,
			RequestMW:   3960,
			Sensitivity: float64(i % 7),
			LevelsMW:    []uint32{696, 1012, 1472, 2100, 2920, 3956},
			LevelValues: []float64{0.9, 1.6, 2.2, 2.7, 3.1, 3.4},
		}
	}
	alloc := budget.NewDPKnapsack(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc.Allocate(120_000, reqs)
	}
}

// Extension — Section II-B DoS-class comparison on identical hardware.
func BenchmarkDoSVariants(b *testing.B) {
	cfg := benchConfig()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mesh := sys.Mesh()
	placement, err := attack.RingCluster(mesh, mesh.Coord(sys.ManagerNode()), 8, 1, sys.ManagerNode())
	if err != nil {
		b.Fatal(err)
	}
	var falseData, drop, loop float64
	for i := 0; i < b.N; i++ {
		results, err := core.DoSVariantStudy(cfg, "mix-1", 16, placement)
		if err != nil {
			b.Fatal(err)
		}
		falseData, drop, loop = results[0].Q, results[1].Q, results[2].Q
	}
	b.ReportMetric(falseData, "Q:false-data")
	b.ReportMetric(drop, "Q:drop")
	b.ReportMetric(loop, "Q:loopback")
}

// Extension — manager-side defenses against the duty-cycled attack.
func BenchmarkDefenseAblation(b *testing.B) {
	cfg := benchConfig()
	cfg.Epochs = 8
	sys, err := core.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mesh := sys.Mesh()
	placement, err := attack.RingCluster(mesh, mesh.Coord(sys.ManagerNode()), 8, 1, sys.ManagerNode())
	if err != nil {
		b.Fatal(err)
	}
	var undefended, defended float64
	for i := 0; i < b.N; i++ {
		results, err := core.DefenseStudy(cfg, "mix-1", 16, placement)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			switch r.Defense {
			case "none":
				undefended = r.Q
			case "both":
				defended = r.Q
			}
		}
	}
	b.ReportMetric(undefended, "Q:none")
	b.ReportMetric(defended, "Q:defended")
}
