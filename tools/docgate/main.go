// Command docgate is the documentation CI gate. It enforces three
// invariants and exits non-zero when any fails:
//
//  1. Every package under internal/ and pkg/ carries a package-level doc
//     comment (the godoc paragraph stating its paper section and role).
//  2. Every repository-relative reference in the front-door documents —
//     markdown links and backticked paths like `internal/core` or
//     `specs/paper.json` — resolves to an existing file or directory, so
//     doc drift fails the build.
//  3. Every plugin name registered on any pkg/htsim axis appears in
//     EXPERIMENTS.md's plugin substitution table, so the registries and
//     the documentation cannot drift apart (the companion check for
//     `htcampaign list` output lives in cmd/htcampaign's tests).
//
// Usage (from the repository root):
//
//	go run ./tools/docgate
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/pkg/htsim"
)

func main() { os.Exit(run()) }

// docFiles are the markdown documents whose references are checked.
var docFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "BENCH_NOTES.md", "ROADMAP.md"}

// run performs all checks and returns the process exit code.
func run() int {
	failed := false
	for _, root := range []string{"internal", "pkg"} {
		if !checkPackageDocs(root) {
			failed = true
		}
	}
	for _, doc := range docFiles {
		if !checkReferences(doc) {
			failed = true
		}
	}
	if !checkPluginCoverage("EXPERIMENTS.md") {
		failed = true
	}
	if failed {
		return 1
	}
	fmt.Println("docgate: all package docs present, all doc references resolve, all plugins documented")
	return 0
}

// checkPluginCoverage verifies every registered plugin name of every
// pkg/htsim axis appears in the named document (EXPERIMENTS.md's plugin
// substitution table). Plugin names must appear as whole backticked code
// spans (`torus`), not as substrings of other names — "xy" inside
// `torus-xy` does not count — so deleting a row from the table cannot
// pass vacuously.
func checkPluginCoverage(doc string) bool {
	data, err := os.ReadFile(doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docgate: %v\n", err)
		return false
	}
	text := string(data)
	spans := make(map[string]bool)
	for _, m := range backtickRef.FindAllStringSubmatch(text, -1) {
		spans[m[1]] = true
	}
	ok := true
	for _, axis := range htsim.Axes() {
		if !strings.Contains(text, axis.Name) {
			fmt.Fprintf(os.Stderr, "docgate: %s does not mention plugin axis %q\n", doc, axis.Name)
			ok = false
		}
		for _, plugin := range axis.Plugins {
			if !spans[plugin] {
				fmt.Fprintf(os.Stderr, "docgate: %s does not list %s plugin `%s`\n", doc, axis.Name, plugin)
				ok = false
			}
		}
	}
	return ok
}

// checkPackageDocs walks every package directory under root and reports
// packages whose non-test files all lack a package doc comment.
func checkPackageDocs(root string) bool {
	ok := true
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		hasGo, documented := packageDoc(path)
		if hasGo && !documented {
			fmt.Fprintf(os.Stderr, "docgate: package %s has no package doc comment\n", path)
			ok = false
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "docgate: walk %s: %v\n", root, err)
		return false
	}
	return ok
}

// packageDoc parses the non-test Go files of one directory and reports
// whether any exist and whether any carries a package doc comment.
func packageDoc(dir string) (hasGo, documented bool) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			continue
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented = true
		}
	}
	return hasGo, documented
}

var (
	// mdLink matches [text](target) markdown links.
	mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)]+)\)`)
	// backtickRef matches `inline code` spans.
	backtickRef = regexp.MustCompile("`([^`\n]+)`")
	// pathLike admits plain repository paths (a slash or a .md/.json/.go
	// suffix, no spaces or shell metacharacters).
	pathLike = regexp.MustCompile(`^[A-Za-z0-9_./\-]+$`)
)

// checkReferences verifies every local reference in one markdown file.
func checkReferences(doc string) bool {
	data, err := os.ReadFile(doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docgate: %v\n", err)
		return false
	}
	ok := true
	report := func(ref string) {
		fmt.Fprintf(os.Stderr, "docgate: %s references %s, which does not exist\n", doc, ref)
		ok = false
	}
	for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
		target := strings.TrimSpace(m[1])
		if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		target, _, _ = strings.Cut(target, "#")
		if !exists(target) {
			report(target)
		}
	}
	for _, m := range backtickRef.FindAllStringSubmatch(string(data), -1) {
		ref := m[1]
		// Only vet spans that are unambiguously repository paths: a path
		// shape plus either a known extension or a top-level source dir.
		if !pathLike.MatchString(ref) {
			continue
		}
		base, _, _ := strings.Cut(ref, ":") // strip `file.go:123` line refs
		// A bare name like `manifest.json` (a generated file) or a Go
		// symbol like `core.Compare` is not a repo path; require a slash.
		if !strings.Contains(base, "/") {
			continue
		}
		isPath := strings.HasSuffix(base, ".md") || strings.HasSuffix(base, ".json") || strings.HasSuffix(base, ".go")
		for _, prefix := range []string{"internal/", "cmd/", "specs/", "examples/", "tools/"} {
			if strings.HasPrefix(base, prefix) {
				isPath = true
			}
		}
		if isPath && !exists(base) {
			report(base)
		}
	}
	return ok
}

// exists reports whether a repository-relative path resolves.
func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
